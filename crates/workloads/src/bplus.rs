//! B+Tree of order 7 (paper Table 5; also the core structure of TPC-C).
//!
//! Nodes are 120-byte persistent objects (15 `u64` words):
//!
//! ```text
//! internal: [tag=0][nkeys][keys ×6][children ×7]
//! leaf:     [tag=1][nkeys][keys ×6][values ×6][next]
//! ```
//!
//! Keys live only in leaves (with their values); internal keys are
//! separators. Leaves are chained through `next` for range scans.
//! Insertion splits full nodes preemptively on the way down; deletion
//! rebalances by borrowing from or merging with siblings on the way down
//! (minimum occupancy 2 — one below ⌈m/2⌉−1, the standard relaxation that
//! makes merges fit an even maximum of 6 keys).
//!
//! The tree does not own its pools: the caller supplies the pool for each
//! allocating operation, which is how the microbench patterns (per-node
//! placement) and TPC-C (per-tree placement, Table 6 `TPCC_*`) share one
//! implementation.

use poat_core::{ObjectId, PoolId};
use poat_pmem::{PmemError, Runtime};
use rand::rngs::StdRng;

use crate::util::{compare_branch, loop_branch, TxLogSet};

const TAG: u32 = 0;
const NKEYS: u32 = 8;
const KEYS: u32 = 16;
const CHILDREN: u32 = 64;
const VALUES: u32 = 64;
const NEXT: u32 = 112;

/// Maximum keys per node (order 7 ⇒ 6 keys, 7 children).
pub const MAX_KEYS: usize = 6;
/// Minimum keys per non-root node.
pub const MIN_KEYS: usize = 2;
/// Node payload size in bytes.
pub const NODE_BYTES: u32 = 120;

/// Volatile mirror of one node.
#[derive(Clone, Debug, Default)]
struct Node {
    leaf: bool,
    keys: Vec<u64>,
    children: Vec<ObjectId>,
    values: Vec<u64>,
    next: ObjectId,
}

/// A persistent B+Tree mapping `u64` keys to `u64` values.
///
/// The `holder` is an 8-byte persistent cell (allocated by the caller)
/// that stores the root's ObjectID, so the whole tree is reachable after a
/// restart.
#[derive(Debug)]
pub struct PersistentBPlusTree {
    holder: ObjectId,
}

impl PersistentBPlusTree {
    /// Wraps (and initializes) a tree whose root pointer lives at `holder`.
    ///
    /// # Errors
    ///
    /// Propagates access failures.
    pub fn create(rt: &mut Runtime, holder: ObjectId) -> Result<Self, PmemError> {
        rt.write_u64(holder, ObjectId::NULL.raw())?;
        rt.persist(holder, 8)?;
        Ok(PersistentBPlusTree { holder })
    }

    /// Re-attaches to an existing tree rooted at `holder` (after reopen).
    pub fn attach(holder: ObjectId) -> Self {
        PersistentBPlusTree { holder }
    }

    /// The root-holder cell.
    pub fn holder(&self) -> ObjectId {
        self.holder
    }

    fn root(&self, rt: &mut Runtime) -> Result<ObjectId, PmemError> {
        Ok(ObjectId::from_raw(rt.read_u64(self.holder)?))
    }

    fn set_root(
        &self,
        rt: &mut Runtime,
        log: &mut TxLogSet,
        root: ObjectId,
    ) -> Result<(), PmemError> {
        log.log(rt, self.holder, 8)?;
        let h = rt.deref(self.holder, None)?;
        rt.write_u64_at(&h, 0, root.raw())?;
        Ok(())
    }

    fn read_node(
        &self,
        rt: &mut Runtime,
        oid: ObjectId,
        dep: Option<u64>,
    ) -> Result<Node, PmemError> {
        let r = rt.deref(oid, dep)?;
        let (tag, _) = rt.read_u64_at(&r, TAG)?;
        let (n, _) = rt.read_u64_at(&r, NKEYS)?;
        let n = n as usize;
        debug_assert!(n <= MAX_KEYS, "corrupt node {oid}: nkeys={n}");
        let mut node = Node {
            leaf: tag == 1,
            ..Node::default()
        };
        for i in 0..n {
            node.keys.push(rt.read_u64_at(&r, KEYS + i as u32 * 8)?.0);
        }
        if node.leaf {
            for i in 0..n {
                node.values
                    .push(rt.read_u64_at(&r, VALUES + i as u32 * 8)?.0);
            }
            node.next = ObjectId::from_raw(rt.read_u64_at(&r, NEXT)?.0);
        } else {
            for i in 0..=n {
                node.children.push(ObjectId::from_raw(
                    rt.read_u64_at(&r, CHILDREN + i as u32 * 8)?.0,
                ));
            }
        }
        Ok(node)
    }

    fn write_node(
        &self,
        rt: &mut Runtime,
        log: Option<&mut TxLogSet>,
        oid: ObjectId,
        node: &Node,
    ) -> Result<(), PmemError> {
        if let Some(log) = log {
            log.log(rt, oid, NODE_BYTES)?;
        }
        let r = rt.deref(oid, None)?;
        rt.write_u64_at(&r, TAG, u64::from(node.leaf))?;
        rt.write_u64_at(&r, NKEYS, node.keys.len() as u64)?;
        for (i, &k) in node.keys.iter().enumerate() {
            rt.write_u64_at(&r, KEYS + i as u32 * 8, k)?;
        }
        if node.leaf {
            for (i, &v) in node.values.iter().enumerate() {
                rt.write_u64_at(&r, VALUES + i as u32 * 8, v)?;
            }
            rt.write_u64_at(&r, NEXT, node.next.raw())?;
        } else {
            for (i, &c) in node.children.iter().enumerate() {
                rt.write_u64_at(&r, CHILDREN + i as u32 * 8, c.raw())?;
            }
        }
        Ok(())
    }

    fn alloc_node(&self, rt: &mut Runtime, pool: PoolId) -> Result<ObjectId, PmemError> {
        let oid = if rt.config().failure_safety && rt.in_transaction() {
            rt.tx_pmalloc_in(pool, NODE_BYTES as u64)?
        } else {
            rt.pmalloc(pool, NODE_BYTES as u64)?
        };
        Ok(oid)
    }

    /// Index of the child to descend into for `key`, with compare-branch
    /// emission: child `i` covers keys `< keys[i]`, child `n` covers the
    /// rest.
    fn child_index(rt: &mut Runtime, node: &Node, key: u64, rng: &mut StdRng) -> usize {
        for (i, &k) in node.keys.iter().enumerate() {
            compare_branch(rt, rng);
            if key < k {
                return i;
            }
        }
        node.keys.len()
    }

    /// Position of `key` in a leaf, with compare-branch emission.
    fn leaf_position(
        rt: &mut Runtime,
        node: &Node,
        key: u64,
        rng: &mut StdRng,
    ) -> Result<usize, usize> {
        for (i, &k) in node.keys.iter().enumerate() {
            compare_branch(rt, rng);
            if k == key {
                return Ok(i);
            }
            if k > key {
                return Err(i);
            }
        }
        Err(node.keys.len())
    }

    /// Looks `key` up, returning its value if present.
    ///
    /// # Errors
    ///
    /// Propagates access failures.
    pub fn get(
        &self,
        rt: &mut Runtime,
        key: u64,
        rng: &mut StdRng,
    ) -> Result<Option<u64>, PmemError> {
        let mut cur = self.root(rt)?;
        loop {
            loop_branch(rt);
            if cur.is_null() {
                return Ok(None);
            }
            let node = self.read_node(rt, cur, None)?;
            if node.leaf {
                return Ok(match Self::leaf_position(rt, &node, key, rng) {
                    Ok(i) => Some(node.values[i]),
                    Err(_) => None,
                });
            }
            cur = node.children[Self::child_index(rt, &node, key, rng)];
        }
    }

    /// Inserts `key → value`, allocating any new nodes in `alloc_pool`.
    /// Returns `false` (without modifying the mapping) if the key exists.
    ///
    /// The operation is wrapped in a transaction on `alloc_pool` when
    /// failure safety is enabled.
    ///
    /// # Errors
    ///
    /// Propagates access/allocation/transaction failures.
    pub fn insert(
        &mut self,
        rt: &mut Runtime,
        key: u64,
        value: u64,
        alloc_pool: PoolId,
        rng: &mut StdRng,
    ) -> Result<bool, PmemError> {
        if rt.in_transaction() {
            // Join the caller's transaction (TPC-C wraps several tree
            // operations in one); its undo log covers our modifications.
            let mut log = TxLogSet::new();
            return self.insert_inner(rt, &mut log, key, value, alloc_pool, rng);
        }
        rt.tx_begin(alloc_pool)?;
        let mut log = TxLogSet::new();
        let result = self.insert_inner(rt, &mut log, key, value, alloc_pool, rng);
        match result {
            Ok(inserted) => {
                rt.tx_end()?;
                Ok(inserted)
            }
            Err(e) => {
                // Roll back any partial splits before propagating.
                if rt.in_transaction() {
                    rt.tx_abort()?;
                }
                Err(e)
            }
        }
    }

    fn insert_inner(
        &mut self,
        rt: &mut Runtime,
        log: &mut TxLogSet,
        key: u64,
        value: u64,
        alloc_pool: PoolId,
        rng: &mut StdRng,
    ) -> Result<bool, PmemError> {
        let mut root = self.root(rt)?;
        if root.is_null() {
            let leaf = self.alloc_node(rt, alloc_pool)?;
            let node = Node {
                leaf: true,
                keys: vec![key],
                values: vec![value],
                children: Vec::new(),
                next: ObjectId::NULL,
            };
            self.write_node(rt, None, leaf, &node)?;
            rt.persist(leaf, NODE_BYTES as u64)?;
            self.set_root(rt, log, leaf)?;
            return Ok(true);
        }

        // Split a full root first so the descent always has room above.
        let root_node = self.read_node(rt, root, None)?;
        if root_node.keys.len() == MAX_KEYS {
            let new_root_oid = self.alloc_node(rt, alloc_pool)?;
            let (sep, right_oid) = self.split_child(rt, log, root, &root_node, alloc_pool)?;
            let new_root = Node {
                leaf: false,
                keys: vec![sep],
                children: vec![root, right_oid],
                values: Vec::new(),
                next: ObjectId::NULL,
            };
            self.write_node(rt, None, new_root_oid, &new_root)?;
            rt.persist(new_root_oid, NODE_BYTES as u64)?;
            self.set_root(rt, log, new_root_oid)?;
            root = new_root_oid;
        }

        let mut cur = root;
        loop {
            loop_branch(rt);
            let node = self.read_node(rt, cur, None)?;
            if node.leaf {
                let mut node = node;
                match Self::leaf_position(rt, &node, key, rng) {
                    Ok(_) => return Ok(false),
                    Err(pos) => {
                        node.keys.insert(pos, key);
                        node.values.insert(pos, value);
                        self.write_node(rt, Some(log), cur, &node)?;
                        return Ok(true);
                    }
                }
            }
            let idx = Self::child_index(rt, &node, key, rng);
            let child = node.children[idx];
            let child_node = self.read_node(rt, child, None)?;
            if child_node.keys.len() == MAX_KEYS {
                let (sep, right_oid) = self.split_child(rt, log, child, &child_node, alloc_pool)?;
                let mut parent = node;
                parent.keys.insert(idx, sep);
                parent.children.insert(idx + 1, right_oid);
                self.write_node(rt, Some(log), cur, &parent)?;
                compare_branch(rt, rng);
                cur = if key < sep { child } else { right_oid };
            } else {
                cur = child;
            }
        }
    }

    /// Splits a full node, returning `(separator, right sibling)`. The
    /// left half is written back in place.
    fn split_child(
        &mut self,
        rt: &mut Runtime,
        log: &mut TxLogSet,
        oid: ObjectId,
        node: &Node,
        alloc_pool: PoolId,
    ) -> Result<(u64, ObjectId), PmemError> {
        debug_assert_eq!(node.keys.len(), MAX_KEYS);
        let right_oid = self.alloc_node(rt, alloc_pool)?;
        let mid = MAX_KEYS / 2; // 3
        let (sep, left, right);
        if node.leaf {
            // Copy-up: the separator remains in the right leaf.
            sep = node.keys[mid];
            left = Node {
                leaf: true,
                keys: node.keys[..mid].to_vec(),
                values: node.values[..mid].to_vec(),
                children: Vec::new(),
                next: right_oid,
            };
            right = Node {
                leaf: true,
                keys: node.keys[mid..].to_vec(),
                values: node.values[mid..].to_vec(),
                children: Vec::new(),
                next: node.next,
            };
        } else {
            // Move-up: the separator leaves the internal node.
            sep = node.keys[mid];
            left = Node {
                leaf: false,
                keys: node.keys[..mid].to_vec(),
                children: node.children[..=mid].to_vec(),
                values: Vec::new(),
                next: ObjectId::NULL,
            };
            right = Node {
                leaf: false,
                keys: node.keys[mid + 1..].to_vec(),
                children: node.children[mid + 1..].to_vec(),
                values: Vec::new(),
                next: ObjectId::NULL,
            };
        }
        self.write_node(rt, None, right_oid, &right)?;
        rt.persist(right_oid, NODE_BYTES as u64)?;
        self.write_node(rt, Some(log), oid, &left)?;
        rt.exec(12);
        Ok((sep, right_oid))
    }

    /// Updates the value of an existing key; returns whether it existed.
    ///
    /// # Errors
    ///
    /// Propagates access/transaction failures.
    pub fn update(
        &mut self,
        rt: &mut Runtime,
        key: u64,
        value: u64,
        rng: &mut StdRng,
    ) -> Result<bool, PmemError> {
        let mut cur = self.root(rt)?;
        loop {
            loop_branch(rt);
            if cur.is_null() {
                return Ok(false);
            }
            let node = self.read_node(rt, cur, None)?;
            if node.leaf {
                let Ok(i) = Self::leaf_position(rt, &node, key, rng) else {
                    return Ok(false);
                };
                let pool = cur.pool().expect("live node");
                let own_tx = !rt.in_transaction();
                if own_tx {
                    rt.tx_begin(pool)?;
                }
                rt.tx_add_range(cur, NODE_BYTES)?;
                let r = rt.deref(cur, None)?;
                rt.write_u64_at(&r, VALUES + i as u32 * 8, value)?;
                if own_tx {
                    rt.tx_end()?;
                }
                return Ok(true);
            }
            cur = node.children[Self::child_index(rt, &node, key, rng)];
        }
    }

    /// Removes `key`, rebalancing on the way down; returns its value if it
    /// was present.
    ///
    /// # Errors
    ///
    /// Propagates access/transaction failures.
    pub fn remove(
        &mut self,
        rt: &mut Runtime,
        key: u64,
        rng: &mut StdRng,
    ) -> Result<Option<u64>, PmemError> {
        // Read-only probe first (the Table 5 ops search before mutating).
        let Some(value) = self.get(rt, key, rng)? else {
            return Ok(None);
        };
        let root = self.root(rt)?;
        let own_tx = !rt.in_transaction();
        if own_tx {
            rt.tx_begin(root.pool().expect("non-empty tree"))?;
        }
        let mut log = TxLogSet::new();
        let result = self.remove_rec(rt, &mut log, root, key, rng);
        match result {
            Ok(()) => {
                // Shrink the root if it lost all its keys.
                let root_node = self.read_node(rt, root, None)?;
                if root_node.keys.is_empty() {
                    let new_root = if root_node.leaf {
                        ObjectId::NULL
                    } else {
                        root_node.children[0]
                    };
                    self.set_root(rt, &mut log, new_root)?;
                    if rt.config().failure_safety {
                        rt.tx_pfree(root)?;
                    } else {
                        rt.pfree(root)?;
                    }
                }
                if own_tx {
                    rt.tx_end()?;
                }
                Ok(Some(value))
            }
            Err(e) => {
                if own_tx && rt.in_transaction() {
                    rt.tx_abort()?;
                }
                Err(e)
            }
        }
    }

    fn remove_rec(
        &mut self,
        rt: &mut Runtime,
        log: &mut TxLogSet,
        cur: ObjectId,
        key: u64,
        rng: &mut StdRng,
    ) -> Result<(), PmemError> {
        let node = self.read_node(rt, cur, None)?;
        if node.leaf {
            let mut node = node;
            if let Ok(i) = Self::leaf_position(rt, &node, key, rng) {
                node.keys.remove(i);
                node.values.remove(i);
                self.write_node(rt, Some(log), cur, &node)?;
            }
            return Ok(());
        }
        let idx = Self::child_index(rt, &node, key, rng);
        let child = node.children[idx];
        let child_node = self.read_node(rt, child, None)?;
        let descend_into = if child_node.keys.len() <= MIN_KEYS {
            // Rebalancing may merge the child leftward; descend into the
            // node that now covers the key.
            self.rebalance_child(rt, log, cur, node, idx, rng)?.0
        } else {
            child
        };
        self.remove_rec(rt, log, descend_into, key, rng)
    }

    /// Gives `parent.children[idx]` at least `MIN_KEYS + 1` keys by
    /// borrowing from a sibling or merging. Returns the node to descend
    /// into (the merged node may differ from the original child) and its
    /// new index.
    fn rebalance_child(
        &mut self,
        rt: &mut Runtime,
        log: &mut TxLogSet,
        parent_oid: ObjectId,
        mut parent: Node,
        idx: usize,
        _rng: &mut StdRng,
    ) -> Result<(ObjectId, usize), PmemError> {
        let child_oid = parent.children[idx];
        let mut child = self.read_node(rt, child_oid, None)?;
        rt.exec(6);

        // Try borrowing from the left sibling.
        if idx > 0 {
            let left_oid = parent.children[idx - 1];
            let mut left = self.read_node(rt, left_oid, None)?;
            if left.keys.len() > MIN_KEYS {
                if child.leaf {
                    let k = left.keys.pop().expect("len > MIN_KEYS");
                    let v = left.values.pop().expect("leaf values match keys");
                    child.keys.insert(0, k);
                    child.values.insert(0, v);
                    parent.keys[idx - 1] = child.keys[0];
                } else {
                    let sep = parent.keys[idx - 1];
                    let k = left.keys.pop().expect("len > MIN_KEYS");
                    let c = left.children.pop().expect("children match keys");
                    child.keys.insert(0, sep);
                    child.children.insert(0, c);
                    parent.keys[idx - 1] = k;
                }
                self.write_node(rt, Some(log), left_oid, &left)?;
                self.write_node(rt, Some(log), child_oid, &child)?;
                self.write_node(rt, Some(log), parent_oid, &parent)?;
                return Ok((child_oid, idx));
            }
        }
        // Try borrowing from the right sibling.
        if idx < parent.children.len() - 1 {
            let right_oid = parent.children[idx + 1];
            let mut right = self.read_node(rt, right_oid, None)?;
            if right.keys.len() > MIN_KEYS {
                if child.leaf {
                    let k = right.keys.remove(0);
                    let v = right.values.remove(0);
                    child.keys.push(k);
                    child.values.push(v);
                    parent.keys[idx] = right.keys[0];
                } else {
                    let sep = parent.keys[idx];
                    child.keys.push(sep);
                    child.children.push(right.children.remove(0));
                    parent.keys[idx] = right.keys.remove(0);
                }
                self.write_node(rt, Some(log), right_oid, &right)?;
                self.write_node(rt, Some(log), child_oid, &child)?;
                self.write_node(rt, Some(log), parent_oid, &parent)?;
                return Ok((child_oid, idx));
            }
        }

        // Merge with a sibling (prefer left so the survivor is leftmost).
        let (left_idx, left_oid, right_oid) = if idx > 0 {
            (idx - 1, parent.children[idx - 1], child_oid)
        } else {
            (idx, child_oid, parent.children[idx + 1])
        };
        let mut left = self.read_node(rt, left_oid, None)?;
        let right = self.read_node(rt, right_oid, None)?;
        if left.leaf {
            left.keys.extend_from_slice(&right.keys);
            left.values.extend_from_slice(&right.values);
            left.next = right.next;
        } else {
            left.keys.push(parent.keys[left_idx]);
            left.keys.extend_from_slice(&right.keys);
            left.children.extend_from_slice(&right.children);
        }
        debug_assert!(left.keys.len() <= MAX_KEYS, "merge overflow");
        parent.keys.remove(left_idx);
        parent.children.remove(left_idx + 1);
        self.write_node(rt, Some(log), left_oid, &left)?;
        self.write_node(rt, Some(log), parent_oid, &parent)?;
        if rt.config().failure_safety {
            rt.tx_pfree(right_oid)?;
        } else {
            rt.pfree(right_oid)?;
        }
        Ok((left_oid, left_idx))
    }

    /// Scans up to `limit` entries with keys `>= from`, via the leaf chain.
    ///
    /// # Errors
    ///
    /// Propagates access failures.
    pub fn scan_from(
        &self,
        rt: &mut Runtime,
        from: u64,
        limit: usize,
        rng: &mut StdRng,
    ) -> Result<Vec<(u64, u64)>, PmemError> {
        let mut out = Vec::new();
        let mut cur = self.root(rt)?;
        if cur.is_null() {
            return Ok(out);
        }
        // Descend to the leaf covering `from`.
        loop {
            let node = self.read_node(rt, cur, None)?;
            if node.leaf {
                break;
            }
            cur = node.children[Self::child_index(rt, &node, from, rng)];
        }
        // Walk the leaf chain.
        while !cur.is_null() && out.len() < limit {
            loop_branch(rt);
            let node = self.read_node(rt, cur, None)?;
            for (i, &k) in node.keys.iter().enumerate() {
                compare_branch(rt, rng);
                if k >= from && out.len() < limit {
                    out.push((k, node.values[i]));
                }
            }
            cur = node.next;
        }
        Ok(out)
    }

    /// All `(key, value)` pairs in key order via the leaf chain (test
    /// helper).
    ///
    /// # Errors
    ///
    /// Propagates access failures.
    pub fn to_sorted_vec(&self, rt: &mut Runtime) -> Result<Vec<(u64, u64)>, PmemError> {
        let mut out = Vec::new();
        let mut cur = self.root(rt)?;
        if cur.is_null() {
            return Ok(out);
        }
        loop {
            let node = self.read_node(rt, cur, None)?;
            if node.leaf {
                break;
            }
            cur = node.children[0];
        }
        while !cur.is_null() {
            let node = self.read_node(rt, cur, None)?;
            for (i, &k) in node.keys.iter().enumerate() {
                out.push((k, node.values[i]));
            }
            cur = node.next;
        }
        Ok(out)
    }

    /// Verifies structural invariants; returns the tree height (test
    /// helper).
    ///
    /// # Errors
    ///
    /// Propagates access failures.
    ///
    /// # Panics
    ///
    /// Panics on an invariant violation.
    pub fn check_invariants(&self, rt: &mut Runtime) -> Result<u32, PmemError> {
        let root = self.root(rt)?;
        if root.is_null() {
            return Ok(0);
        }
        self.check_subtree(rt, root, None, None, true)
    }

    fn check_subtree(
        &self,
        rt: &mut Runtime,
        oid: ObjectId,
        lo: Option<u64>,
        hi: Option<u64>,
        is_root: bool,
    ) -> Result<u32, PmemError> {
        let node = self.read_node(rt, oid, None)?;
        assert!(node.keys.len() <= MAX_KEYS, "node overflow");
        if !is_root {
            assert!(
                node.keys.len() >= MIN_KEYS,
                "node underflow: {}",
                node.keys.len()
            );
        }
        assert!(node.keys.windows(2).all(|w| w[0] < w[1]), "keys sorted");
        if let Some(lo) = lo {
            assert!(node.keys.first().is_none_or(|&k| k >= lo), "lower bound");
        }
        if let Some(hi) = hi {
            assert!(node.keys.last().is_none_or(|&k| k < hi), "upper bound");
        }
        if node.leaf {
            assert_eq!(node.keys.len(), node.values.len());
            return Ok(1);
        }
        assert_eq!(node.children.len(), node.keys.len() + 1);
        let mut heights = Vec::new();
        for (i, &c) in node.children.iter().enumerate() {
            let clo = if i == 0 { lo } else { Some(node.keys[i - 1]) };
            let chi = if i == node.keys.len() {
                hi
            } else {
                Some(node.keys[i])
            };
            heights.push(self.check_subtree(rt, c, clo, chi, false)?);
        }
        assert!(heights.windows(2).all(|w| w[0] == w[1]), "uniform depth");
        Ok(heights[0] + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{Pattern, PoolSet};
    use poat_pmem::RuntimeConfig;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeMap;

    fn setup() -> (Runtime, PersistentBPlusTree, PoolSet, StdRng) {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let mut pools = PoolSet::create(&mut rt, Pattern::All, "bpt", 4 << 20).unwrap();
        let holder = rt.pool_root(pools.anchor(), 8).unwrap();
        let tree = PersistentBPlusTree::create(&mut rt, holder).unwrap();
        let _ = &mut pools;
        (rt, tree, pools, StdRng::seed_from_u64(8))
    }

    #[test]
    fn insert_get_update() {
        let (mut rt, mut t, mut pools, mut rng) = setup();
        for k in [5u64, 1, 9, 3, 7] {
            let pool = pools.pool_for(&mut rt, k).unwrap();
            assert!(t.insert(&mut rt, k, k * 10, pool, &mut rng).unwrap());
        }
        let pool = pools.pool_for(&mut rt, 5).unwrap();
        assert!(
            !t.insert(&mut rt, 5, 999, pool, &mut rng).unwrap(),
            "duplicate"
        );
        assert_eq!(
            t.get(&mut rt, 5, &mut rng).unwrap(),
            Some(50),
            "not clobbered"
        );
        assert_eq!(t.get(&mut rt, 4, &mut rng).unwrap(), None);
        assert!(t.update(&mut rt, 9, 91, &mut rng).unwrap());
        assert!(!t.update(&mut rt, 4, 0, &mut rng).unwrap());
        assert_eq!(t.get(&mut rt, 9, &mut rng).unwrap(), Some(91));
    }

    #[test]
    fn splits_keep_invariants_and_order() {
        let (mut rt, mut t, mut pools, mut rng) = setup();
        for k in 0..200u64 {
            let pool = pools.pool_for(&mut rt, k).unwrap();
            t.insert(&mut rt, k * 7 % 200, k, pool, &mut rng).unwrap();
            if k % 25 == 0 {
                t.check_invariants(&mut rt).unwrap();
            }
        }
        let h = t.check_invariants(&mut rt).unwrap();
        assert!(h >= 3, "200 keys at order 7 needs height >= 3, got {h}");
        let keys: Vec<u64> = t
            .to_sorted_vec(&mut rt)
            .unwrap()
            .iter()
            .map(|p| p.0)
            .collect();
        assert_eq!(keys, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn removals_rebalance() {
        let (mut rt, mut t, mut pools, mut rng) = setup();
        for k in 0..100u64 {
            let pool = pools.pool_for(&mut rt, k).unwrap();
            t.insert(&mut rt, k, k, pool, &mut rng).unwrap();
        }
        for k in (0..100u64).step_by(2) {
            assert_eq!(t.remove(&mut rt, k, &mut rng).unwrap(), Some(k));
            if k % 20 == 0 {
                t.check_invariants(&mut rt).unwrap();
            }
        }
        assert_eq!(
            t.remove(&mut rt, 2, &mut rng).unwrap(),
            None,
            "already gone"
        );
        t.check_invariants(&mut rt).unwrap();
        let keys: Vec<u64> = t
            .to_sorted_vec(&mut rt)
            .unwrap()
            .iter()
            .map(|p| p.0)
            .collect();
        assert_eq!(keys, (1..100).step_by(2).collect::<Vec<_>>());
    }

    #[test]
    fn drain_to_empty_and_reuse() {
        let (mut rt, mut t, mut pools, mut rng) = setup();
        for k in 0..40u64 {
            let pool = pools.pool_for(&mut rt, k).unwrap();
            t.insert(&mut rt, k, k, pool, &mut rng).unwrap();
        }
        for k in 0..40u64 {
            assert!(t.remove(&mut rt, k, &mut rng).unwrap().is_some(), "{k}");
        }
        assert!(t.to_sorted_vec(&mut rt).unwrap().is_empty());
        // Tree usable again after being emptied.
        let pool = pools.pool_for(&mut rt, 7).unwrap();
        assert!(t.insert(&mut rt, 7, 70, pool, &mut rng).unwrap());
        assert_eq!(t.get(&mut rt, 7, &mut rng).unwrap(), Some(70));
    }

    #[test]
    fn matches_btreemap_reference() {
        let (mut rt, mut t, mut pools, mut rng) = setup();
        let mut reference = BTreeMap::new();
        for _ in 0..800 {
            let k = rng.gen_range(0..250u64);
            if reference.remove(&k).is_some() {
                assert!(t.remove(&mut rt, k, &mut rng).unwrap().is_some());
            } else {
                reference.insert(k, k * 3);
                let pool = pools.pool_for(&mut rt, k).unwrap();
                assert!(t.insert(&mut rt, k, k * 3, pool, &mut rng).unwrap());
            }
        }
        t.check_invariants(&mut rt).unwrap();
        let want: Vec<(u64, u64)> = reference.into_iter().collect();
        assert_eq!(t.to_sorted_vec(&mut rt).unwrap(), want);
    }

    #[test]
    fn scan_returns_range_in_order() {
        let (mut rt, mut t, mut pools, mut rng) = setup();
        for k in 0..60u64 {
            let pool = pools.pool_for(&mut rt, k).unwrap();
            t.insert(&mut rt, k * 2, k, pool, &mut rng).unwrap();
        }
        let got = t.scan_from(&mut rt, 50, 10, &mut rng).unwrap();
        let keys: Vec<u64> = got.iter().map(|p| p.0).collect();
        assert_eq!(keys, vec![50, 52, 54, 56, 58, 60, 62, 64, 66, 68]);
    }
}

//! BT — the persistent B-Tree of order 7 (paper Table 5).
//!
//! Unlike the B+Tree, keys live in every node (a classic B-Tree). The
//! Table 5 workload only inserts: "Search 5000 random integers. If the
//! number is missing, insert a new node ... and the tree will be
//! re-balanced" — rebalancing on insert means node splits.
//!
//! Node layout (15 `u64` words / 120 bytes):
//! `[nkeys][leaf][keys ×6][children ×7]`.

use poat_core::{ObjectId, PoolId};
use poat_pmem::{PmemError, Runtime};
use rand::rngs::StdRng;

use crate::pattern::{Pattern, PoolSet};
use crate::util::{compare_branch, loop_branch, TxLogSet};

const NKEYS: u32 = 0;
const LEAF: u32 = 8;
const KEYS: u32 = 16;
const CHILDREN: u32 = 64;

/// Maximum keys per node (order 7).
pub const MAX_KEYS: usize = 6;
/// Node payload size in bytes.
pub const NODE_BYTES: u32 = 120;

#[derive(Clone, Debug, Default)]
struct Node {
    leaf: bool,
    keys: Vec<u64>,
    children: Vec<ObjectId>,
}

/// The persistent B-Tree (a `u64` key set).
#[derive(Debug)]
pub struct PersistentBTree {
    root_holder: ObjectId,
    pools: PoolSet,
}

impl PersistentBTree {
    /// Creates an empty tree with pools laid out per `pattern`.
    ///
    /// # Errors
    ///
    /// Propagates pool-creation failures.
    pub fn create(rt: &mut Runtime, pattern: Pattern) -> Result<Self, PmemError> {
        let pools = PoolSet::create(rt, pattern, "bt", 4 << 20)?;
        let root_holder = rt.pool_root(pools.anchor(), 8)?;
        rt.write_u64(root_holder, ObjectId::NULL.raw())?;
        rt.persist(root_holder, 8)?;
        Ok(PersistentBTree { root_holder, pools })
    }

    fn root(&self, rt: &mut Runtime) -> Result<ObjectId, PmemError> {
        Ok(ObjectId::from_raw(rt.read_u64(self.root_holder)?))
    }

    fn read_node(
        &self,
        rt: &mut Runtime,
        oid: ObjectId,
        dep: Option<u64>,
    ) -> Result<Node, PmemError> {
        let r = rt.deref(oid, dep)?;
        let (n, _) = rt.read_u64_at(&r, NKEYS)?;
        let (leaf, _) = rt.read_u64_at(&r, LEAF)?;
        let n = n as usize;
        debug_assert!(n <= MAX_KEYS);
        let mut node = Node {
            leaf: leaf == 1,
            ..Node::default()
        };
        for i in 0..n {
            node.keys.push(rt.read_u64_at(&r, KEYS + i as u32 * 8)?.0);
        }
        if !node.leaf {
            for i in 0..=n {
                node.children.push(ObjectId::from_raw(
                    rt.read_u64_at(&r, CHILDREN + i as u32 * 8)?.0,
                ));
            }
        }
        Ok(node)
    }

    fn write_node(
        &self,
        rt: &mut Runtime,
        log: Option<&mut TxLogSet>,
        oid: ObjectId,
        node: &Node,
    ) -> Result<(), PmemError> {
        if let Some(log) = log {
            log.log(rt, oid, NODE_BYTES)?;
        }
        let r = rt.deref(oid, None)?;
        rt.write_u64_at(&r, NKEYS, node.keys.len() as u64)?;
        rt.write_u64_at(&r, LEAF, u64::from(node.leaf))?;
        for (i, &k) in node.keys.iter().enumerate() {
            rt.write_u64_at(&r, KEYS + i as u32 * 8, k)?;
        }
        for (i, &c) in node.children.iter().enumerate() {
            rt.write_u64_at(&r, CHILDREN + i as u32 * 8, c.raw())?;
        }
        Ok(())
    }

    fn alloc_node(&self, rt: &mut Runtime, pool: PoolId) -> Result<ObjectId, PmemError> {
        if rt.config().failure_safety && rt.in_transaction() {
            rt.tx_pmalloc_in(pool, NODE_BYTES as u64)
        } else {
            rt.pmalloc(pool, NODE_BYTES as u64)
        }
    }

    /// Scans a node for `key`: `Ok(i)` if present, `Err(child index)` to
    /// descend.
    fn scan(rt: &mut Runtime, node: &Node, key: u64, rng: &mut StdRng) -> Result<usize, usize> {
        for (i, &k) in node.keys.iter().enumerate() {
            compare_branch(rt, rng);
            if k == key {
                return Ok(i);
            }
            if k > key {
                return Err(i);
            }
        }
        Err(node.keys.len())
    }

    /// Whether `key` is present.
    ///
    /// # Errors
    ///
    /// Propagates access failures.
    pub fn contains(
        &self,
        rt: &mut Runtime,
        key: u64,
        rng: &mut StdRng,
    ) -> Result<bool, PmemError> {
        let mut cur = self.root(rt)?;
        loop {
            loop_branch(rt);
            if cur.is_null() {
                return Ok(false);
            }
            let node = self.read_node(rt, cur, None)?;
            match Self::scan(rt, &node, key, rng) {
                Ok(_) => return Ok(true),
                Err(idx) => {
                    if node.leaf {
                        return Ok(false);
                    }
                    cur = node.children[idx];
                }
            }
        }
    }

    /// Inserts `key` if absent; returns whether it was inserted (one
    /// Table 5 operation, since BT only inserts).
    ///
    /// # Errors
    ///
    /// Propagates access/allocation/transaction failures.
    pub fn insert(
        &mut self,
        rt: &mut Runtime,
        key: u64,
        rng: &mut StdRng,
    ) -> Result<bool, PmemError> {
        if self.contains(rt, key, rng)? {
            return Ok(false);
        }
        let alloc_pool = self.pools.pool_for(rt, key)?;
        rt.tx_begin(alloc_pool)?;
        let mut log = TxLogSet::new();

        let mut root = self.root(rt)?;
        if root.is_null() {
            let leaf = self.alloc_node(rt, alloc_pool)?;
            let node = Node {
                leaf: true,
                keys: vec![key],
                children: Vec::new(),
            };
            self.write_node(rt, None, leaf, &node)?;
            rt.persist(leaf, NODE_BYTES as u64)?;
            log.log(rt, self.root_holder, 8)?;
            let h = rt.deref(self.root_holder, None)?;
            rt.write_u64_at(&h, 0, leaf.raw())?;
            rt.tx_end()?;
            return Ok(true);
        }

        let root_node = self.read_node(rt, root, None)?;
        if root_node.keys.len() == MAX_KEYS {
            let new_root_oid = self.alloc_node(rt, alloc_pool)?;
            let (sep, right) = self.split(rt, &mut log, root, &root_node, alloc_pool)?;
            let new_root = Node {
                leaf: false,
                keys: vec![sep],
                children: vec![root, right],
            };
            self.write_node(rt, None, new_root_oid, &new_root)?;
            rt.persist(new_root_oid, NODE_BYTES as u64)?;
            log.log(rt, self.root_holder, 8)?;
            let h = rt.deref(self.root_holder, None)?;
            rt.write_u64_at(&h, 0, new_root_oid.raw())?;
            root = new_root_oid;
        }

        let mut cur = root;
        loop {
            loop_branch(rt);
            let node = self.read_node(rt, cur, None)?;
            let idx = match Self::scan(rt, &node, key, rng) {
                Ok(_) => {
                    // Key appeared via a split separator move; nothing to do.
                    rt.tx_end()?;
                    return Ok(false);
                }
                Err(i) => i,
            };
            if node.leaf {
                let mut node = node;
                node.keys.insert(idx, key);
                self.write_node(rt, Some(&mut log), cur, &node)?;
                rt.tx_end()?;
                return Ok(true);
            }
            let child = node.children[idx];
            let child_node = self.read_node(rt, child, None)?;
            if child_node.keys.len() == MAX_KEYS {
                let (sep, right) = self.split(rt, &mut log, child, &child_node, alloc_pool)?;
                let mut parent = node;
                parent.keys.insert(idx, sep);
                parent.children.insert(idx + 1, right);
                self.write_node(rt, Some(&mut log), cur, &parent)?;
                compare_branch(rt, rng);
                if key == sep {
                    rt.tx_end()?;
                    return Ok(false);
                }
                cur = if key < sep { child } else { right };
            } else {
                cur = child;
            }
        }
    }

    /// Splits a full node; returns `(promoted key, right sibling)`.
    fn split(
        &mut self,
        rt: &mut Runtime,
        log: &mut TxLogSet,
        oid: ObjectId,
        node: &Node,
        alloc_pool: PoolId,
    ) -> Result<(u64, ObjectId), PmemError> {
        debug_assert_eq!(node.keys.len(), MAX_KEYS);
        let right_oid = self.alloc_node(rt, alloc_pool)?;
        let mid = MAX_KEYS / 2; // promote keys[3]
        let sep = node.keys[mid];
        let left = Node {
            leaf: node.leaf,
            keys: node.keys[..mid].to_vec(),
            children: if node.leaf {
                Vec::new()
            } else {
                node.children[..=mid].to_vec()
            },
        };
        let right = Node {
            leaf: node.leaf,
            keys: node.keys[mid + 1..].to_vec(),
            children: if node.leaf {
                Vec::new()
            } else {
                node.children[mid + 1..].to_vec()
            },
        };
        self.write_node(rt, None, right_oid, &right)?;
        rt.persist(right_oid, NODE_BYTES as u64)?;
        self.write_node(rt, Some(log), oid, &left)?;
        rt.exec(12);
        Ok((sep, right_oid))
    }

    /// All keys in sorted order (test helper).
    ///
    /// # Errors
    ///
    /// Propagates access failures.
    pub fn to_sorted_vec(&self, rt: &mut Runtime) -> Result<Vec<u64>, PmemError> {
        let mut out = Vec::new();
        let root = self.root(rt)?;
        if !root.is_null() {
            self.walk(rt, root, &mut out)?;
        }
        Ok(out)
    }

    fn walk(&self, rt: &mut Runtime, oid: ObjectId, out: &mut Vec<u64>) -> Result<(), PmemError> {
        let node = self.read_node(rt, oid, None)?;
        if node.leaf {
            out.extend_from_slice(&node.keys);
            return Ok(());
        }
        for i in 0..node.keys.len() {
            self.walk(rt, node.children[i], out)?;
            out.push(node.keys[i]);
        }
        self.walk(rt, node.children[node.keys.len()], out)?;
        Ok(())
    }

    /// Verifies B-Tree invariants; returns the height (test helper).
    ///
    /// # Errors
    ///
    /// Propagates access failures.
    ///
    /// # Panics
    ///
    /// Panics on an invariant violation.
    pub fn check_invariants(&self, rt: &mut Runtime) -> Result<u32, PmemError> {
        let root = self.root(rt)?;
        if root.is_null() {
            return Ok(0);
        }
        self.check_subtree(rt, root, None, None)
    }

    fn check_subtree(
        &self,
        rt: &mut Runtime,
        oid: ObjectId,
        lo: Option<u64>,
        hi: Option<u64>,
    ) -> Result<u32, PmemError> {
        let node = self.read_node(rt, oid, None)?;
        assert!(node.keys.len() <= MAX_KEYS);
        assert!(node.keys.windows(2).all(|w| w[0] < w[1]), "sorted");
        if let (Some(lo), Some(&k)) = (lo, node.keys.first()) {
            assert!(k > lo);
        }
        if let (Some(hi), Some(&k)) = (hi, node.keys.last()) {
            assert!(k < hi);
        }
        if node.leaf {
            return Ok(1);
        }
        assert_eq!(node.children.len(), node.keys.len() + 1);
        let mut heights = Vec::new();
        for (i, &c) in node.children.iter().enumerate() {
            let clo = if i == 0 { lo } else { Some(node.keys[i - 1]) };
            let chi = if i == node.keys.len() {
                hi
            } else {
                Some(node.keys[i])
            };
            heights.push(self.check_subtree(rt, c, clo, chi)?);
        }
        assert!(heights.windows(2).all(|w| w[0] == w[1]), "uniform depth");
        Ok(heights[0] + 1)
    }

    /// The pool set (for pool-count reporting).
    pub fn pools(&self) -> &PoolSet {
        &self.pools
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poat_pmem::RuntimeConfig;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeSet;

    fn setup(pattern: Pattern) -> (Runtime, PersistentBTree, StdRng) {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let t = PersistentBTree::create(&mut rt, pattern).unwrap();
        (rt, t, StdRng::seed_from_u64(21))
    }

    #[test]
    fn insert_and_search() {
        let (mut rt, mut t, mut rng) = setup(Pattern::All);
        for k in [9u64, 3, 7, 1, 5] {
            assert!(t.insert(&mut rt, k, &mut rng).unwrap());
        }
        assert!(!t.insert(&mut rt, 7, &mut rng).unwrap());
        assert!(t.contains(&mut rt, 1, &mut rng).unwrap());
        assert!(!t.contains(&mut rt, 2, &mut rng).unwrap());
        assert_eq!(t.to_sorted_vec(&mut rt).unwrap(), vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn sequential_inserts_split_correctly() {
        let (mut rt, mut t, mut rng) = setup(Pattern::All);
        for k in 0..300u64 {
            assert!(t.insert(&mut rt, k, &mut rng).unwrap());
            if k % 40 == 0 {
                t.check_invariants(&mut rt).unwrap();
            }
        }
        assert!(t.check_invariants(&mut rt).unwrap() >= 3);
        assert_eq!(
            t.to_sorted_vec(&mut rt).unwrap(),
            (0..300).collect::<Vec<_>>()
        );
    }

    #[test]
    fn matches_btreeset_reference() {
        for pattern in [Pattern::Random, Pattern::Each] {
            let (mut rt, mut t, mut rng) = setup(pattern);
            let mut reference = BTreeSet::new();
            for _ in 0..400 {
                let k = rng.gen_range(0..1000u64);
                let inserted = t.insert(&mut rt, k, &mut rng).unwrap();
                assert_eq!(inserted, reference.insert(k), "{pattern} key {k}");
            }
            t.check_invariants(&mut rt).unwrap();
            let want: Vec<u64> = reference.into_iter().collect();
            assert_eq!(t.to_sorted_vec(&mut rt).unwrap(), want, "{pattern}");
        }
    }

    #[test]
    fn survives_crash() {
        let (mut rt, mut t, mut rng) = setup(Pattern::Random);
        for k in 0..50u64 {
            t.insert(&mut rt, k * 3, &mut rng).unwrap();
        }
        let mut rt2 = rt.crash_and_recover(17).unwrap();
        t.check_invariants(&mut rt2).unwrap();
        assert_eq!(
            t.to_sorted_vec(&mut rt2).unwrap(),
            (0..50).map(|k| k * 3).collect::<Vec<_>>()
        );
    }
}

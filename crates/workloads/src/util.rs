//! Shared helpers for the persistent workloads.

use poat_pmem::{PmemError, Runtime};
use rand::rngs::StdRng;
use rand::Rng;

/// Probability that a data-dependent compare branch mispredicts. Loop and
/// structural branches are assumed well-predicted (Pentium M predictor,
/// Table 4); key compares against random data mispredict occasionally.
pub const COMPARE_MISPREDICT_P: f64 = 0.10;

/// Emits the compute of one key comparison: a couple of ALU ops plus a
/// data-dependent branch.
pub fn compare_branch(rt: &mut Runtime, rng: &mut StdRng) {
    rt.exec(5);
    rt.branch(rng.gen_bool(COMPARE_MISPREDICT_P));
}

/// Emits a well-predicted structural branch (loop back-edges, null checks).
pub fn loop_branch(rt: &mut Runtime) {
    rt.exec(3);
    rt.branch(false);
}

/// Tracks which objects the current transaction has already snapshotted,
/// so each node is `tx_add_range`d at most once per operation (the idiom
/// NVML transactions use).
#[derive(Debug, Default)]
pub struct TxLogSet {
    logged: Vec<u64>,
}

impl TxLogSet {
    /// Creates an empty set (call per operation/transaction).
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshots `[oid, oid+len)` into the undo log unless this object was
    /// already logged in this transaction.
    ///
    /// # Errors
    ///
    /// Propagates `tx_add_range` failures.
    pub fn log(
        &mut self,
        rt: &mut Runtime,
        oid: poat_core::ObjectId,
        len: u32,
    ) -> Result<(), PmemError> {
        if self.logged.contains(&oid.raw()) {
            return Ok(());
        }
        rt.tx_add_range(oid, len)?;
        self.logged.push(oid.raw());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poat_pmem::RuntimeConfig;
    use rand::SeedableRng;

    #[test]
    fn compare_branch_emits_exec_and_branch() {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        compare_branch(&mut rt, &mut rng);
        let s = rt.trace().summary();
        assert_eq!(s.branches, 1);
        assert_eq!(s.instructions, 6);
    }

    #[test]
    fn tx_log_set_logs_once() {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let pool = rt.pool_create("p", 1 << 16).unwrap();
        let oid = rt.pmalloc(pool, 16).unwrap();
        rt.tx_begin(pool).unwrap();
        let mut set = TxLogSet::new();
        set.log(&mut rt, oid, 16).unwrap();
        let clwbs_after_first = rt.trace().summary().clwbs;
        set.log(&mut rt, oid, 16).unwrap();
        assert_eq!(
            rt.trace().summary().clwbs,
            clwbs_after_first,
            "second log is a no-op"
        );
        rt.tx_end().unwrap();
    }
}

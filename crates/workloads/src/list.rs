//! The persistent singly linked list (paper Figure 4 / workload LL).
//!
//! Each node is `{ value: u64, next: OID }`. The list head lives in the
//! root object of the anchor pool, so the entire structure is reachable
//! from `pool_root` after a restart. Under the EACH pattern every node
//! sits in its own pool — the paper's worst case for both the last-value
//! predictor (BASE) and the POLB (OPT), because a traversal changes pools
//! at every hop.

use poat_core::ObjectId;
use poat_pmem::{PmemError, Runtime};
use rand::rngs::StdRng;

use crate::pattern::{Pattern, PoolSet};
use crate::util::{compare_branch, loop_branch, TxLogSet};

const VAL: u32 = 0;
const NEXT: u32 = 8;
/// Node payload size in bytes.
pub const NODE_BYTES: u32 = 16;

/// A persistent singly linked list of `u64` values.
#[derive(Debug)]
pub struct PersistentList {
    root: ObjectId,
    pools: PoolSet,
}

impl PersistentList {
    /// Creates an empty list with pools laid out per `pattern`.
    ///
    /// # Errors
    ///
    /// Propagates pool-creation failures.
    pub fn create(rt: &mut Runtime, pattern: Pattern) -> Result<Self, PmemError> {
        let mut pools = PoolSet::create(rt, pattern, "ll", 1 << 20)?;
        let root = rt.pool_root(pools.anchor(), 8)?;
        rt.write_u64(root, ObjectId::NULL.raw())?;
        rt.persist(root, 8)?;
        // EACH anchor never holds nodes; silence the unused warning path.
        let _ = &mut pools;
        Ok(PersistentList { root, pools })
    }

    /// Searches for `value`; returns `(predecessor, node)` where the
    /// predecessor is NULL when the node is the head (paper's `find`, with
    /// the extra predecessor needed by `remove`).
    ///
    /// # Errors
    ///
    /// Propagates access failures.
    #[allow(clippy::type_complexity)]
    fn find_with_prev(
        &self,
        rt: &mut Runtime,
        value: u64,
        rng: &mut StdRng,
    ) -> Result<Option<(ObjectId, ObjectId)>, PmemError> {
        let root = rt.deref(self.root, None)?;
        let (mut cur_raw, mut dep) = rt.read_u64_at(&root, 0)?;
        let mut prev = ObjectId::NULL;
        loop {
            let cur = ObjectId::from_raw(cur_raw);
            loop_branch(rt);
            if cur.is_null() {
                return Ok(None);
            }
            let node = rt.deref(cur, Some(dep))?;
            let (v, _) = rt.read_u64_at(&node, VAL)?;
            compare_branch(rt, rng);
            if v == value {
                return Ok(Some((prev, cur)));
            }
            let (next, ndep) = rt.read_u64_at(&node, NEXT)?;
            prev = cur;
            cur_raw = next;
            dep = ndep;
        }
    }

    /// Whether `value` is in the list.
    ///
    /// # Errors
    ///
    /// Propagates access failures.
    pub fn contains(
        &self,
        rt: &mut Runtime,
        value: u64,
        rng: &mut StdRng,
    ) -> Result<bool, PmemError> {
        Ok(self.find_with_prev(rt, value, rng)?.is_some())
    }

    /// Inserts `value` at the head (paper Figure 4 `insert`).
    ///
    /// # Errors
    ///
    /// Propagates allocation/transaction failures.
    pub fn insert(
        &mut self,
        rt: &mut Runtime,
        value: u64,
        _rng: &mut StdRng,
    ) -> Result<ObjectId, PmemError> {
        let pool = self.pools.pool_for(rt, value)?;
        rt.tx_begin(pool)?;
        let node = if rt.config().failure_safety {
            rt.tx_pmalloc(NODE_BYTES as u64)?
        } else {
            rt.pmalloc(pool, NODE_BYTES as u64)?
        };
        let root = rt.deref(self.root, None)?;
        let (head, _) = rt.read_u64_at(&root, 0)?;
        let nref = rt.deref(node, None)?;
        rt.write_u64_at(&nref, VAL, value)?;
        rt.write_u64_at(&nref, NEXT, head)?;
        rt.persist(node, NODE_BYTES as u64)?;
        // The head update is the only in-place modification.
        rt.tx_add_range(self.root, 8)?;
        let root = rt.deref(self.root, None)?;
        rt.write_u64_at(&root, 0, node.raw())?;
        rt.tx_end()?;
        Ok(node)
    }

    /// Removes `value` if present; returns whether a node was removed.
    ///
    /// # Errors
    ///
    /// Propagates access/transaction failures.
    pub fn remove(
        &mut self,
        rt: &mut Runtime,
        value: u64,
        rng: &mut StdRng,
    ) -> Result<bool, PmemError> {
        let Some((prev, victim)) = self.find_with_prev(rt, value, rng)? else {
            return Ok(false);
        };
        let victim_pool = victim.pool().expect("live node has a pool");
        rt.tx_begin(victim_pool)?;
        let mut log = TxLogSet::new();
        let vref = rt.deref(victim, None)?;
        let (next, _) = rt.read_u64_at(&vref, NEXT)?;
        if prev.is_null() {
            log.log(rt, self.root, 8)?;
            let root = rt.deref(self.root, None)?;
            rt.write_u64_at(&root, 0, next)?;
        } else {
            log.log(rt, prev.add(NEXT), 8)?;
            let pref = rt.deref(prev, None)?;
            rt.write_u64_at(&pref, NEXT, next)?;
        }
        if rt.config().failure_safety {
            rt.tx_pfree(victim)?;
        } else {
            rt.pfree(victim)?;
        }
        rt.tx_end()?;
        Ok(true)
    }

    /// Runs one Table 5 operation: search `value`; remove it if found,
    /// otherwise insert it.
    ///
    /// # Errors
    ///
    /// Propagates access/transaction failures.
    pub fn op(&mut self, rt: &mut Runtime, value: u64, rng: &mut StdRng) -> Result<(), PmemError> {
        if self.remove(rt, value, rng)? {
            return Ok(());
        }
        self.insert(rt, value, rng)?;
        Ok(())
    }

    /// Collects the values in list order (test/diagnostic helper; bypasses
    /// the compute-emission helpers).
    ///
    /// # Errors
    ///
    /// Propagates access failures.
    pub fn to_vec(&self, rt: &mut Runtime) -> Result<Vec<u64>, PmemError> {
        let mut out = Vec::new();
        let mut cur = ObjectId::from_raw(rt.read_u64(self.root)?);
        while !cur.is_null() {
            let node = rt.deref(cur, None)?;
            let (v, _) = rt.read_u64_at(&node, VAL)?;
            let (n, _) = rt.read_u64_at(&node, NEXT)?;
            out.push(v);
            cur = ObjectId::from_raw(n);
        }
        Ok(out)
    }

    /// The pool set (for pool-count reporting).
    pub fn pools(&self) -> &PoolSet {
        &self.pools
    }

    /// The root object holding the head reference.
    pub fn root(&self) -> ObjectId {
        self.root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poat_pmem::RuntimeConfig;
    use rand::{Rng, SeedableRng};

    fn setup(pattern: Pattern) -> (Runtime, PersistentList, StdRng) {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let list = PersistentList::create(&mut rt, pattern).unwrap();
        (rt, list, StdRng::seed_from_u64(42))
    }

    #[test]
    fn insert_makes_values_visible() {
        let (mut rt, mut list, mut rng) = setup(Pattern::All);
        for v in [3, 1, 4, 1, 5] {
            list.insert(&mut rt, v, &mut rng).unwrap();
        }
        assert_eq!(list.to_vec(&mut rt).unwrap(), vec![5, 1, 4, 1, 3]);
    }

    #[test]
    fn remove_head_middle_tail() {
        let (mut rt, mut list, mut rng) = setup(Pattern::All);
        for v in 1..=5 {
            list.insert(&mut rt, v, &mut rng).unwrap();
        }
        // List is 5,4,3,2,1.
        assert!(list.remove(&mut rt, 5, &mut rng).unwrap(), "head");
        assert!(list.remove(&mut rt, 3, &mut rng).unwrap(), "middle");
        assert!(list.remove(&mut rt, 1, &mut rng).unwrap(), "tail");
        assert!(!list.remove(&mut rt, 99, &mut rng).unwrap());
        assert_eq!(list.to_vec(&mut rt).unwrap(), vec![4, 2]);
    }

    #[test]
    fn matches_reference_model_under_each_pattern() {
        let (mut rt, mut list, mut rng) = setup(Pattern::Each);
        let mut reference: Vec<u64> = Vec::new();
        for _ in 0..120 {
            let v = rng.gen_range(0..40);
            if let Some(pos) = reference.iter().position(|&x| x == v) {
                reference.remove(pos);
                assert!(list.remove(&mut rt, v, &mut rng).unwrap());
            } else {
                reference.insert(0, v);
                list.insert(&mut rt, v, &mut rng).unwrap();
            }
        }
        let mut got = list.to_vec(&mut rt).unwrap();
        let mut want = reference.clone();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(list.pools().pool_count() > 0);
    }

    #[test]
    fn each_pattern_allocates_one_pool_per_insert() {
        let (mut rt, mut list, mut rng) = setup(Pattern::Each);
        for v in 0..10 {
            list.insert(&mut rt, v, &mut rng).unwrap();
        }
        assert_eq!(list.pools().pool_count(), 10);
    }

    #[test]
    fn survives_crash_after_commit() {
        let (mut rt, mut list, mut rng) = setup(Pattern::Random);
        for v in [10, 20, 30] {
            list.insert(&mut rt, v, &mut rng).unwrap();
        }
        let mut rt2 = rt.crash_and_recover(7).unwrap();
        let mut got = list.to_vec(&mut rt2).unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![10, 20, 30]);
    }
}

//! BST — the persistent (unbalanced) binary search tree (paper Table 5).
//!
//! Node layout: `{ key: u64, left: OID, right: OID }`. The Table 5
//! operation searches a random key; if found the node is removed and
//! replaced with the maximum of its left subtree (as the paper specifies),
//! otherwise a new node is inserted at the leaf position.

use poat_core::ObjectId;
use poat_pmem::{PmemError, Runtime};
use rand::rngs::StdRng;

use crate::pattern::{Pattern, PoolSet};
use crate::util::{compare_branch, loop_branch, TxLogSet};

const KEY: u32 = 0;
const LEFT: u32 = 8;
const RIGHT: u32 = 16;
/// Node payload size in bytes.
pub const NODE_BYTES: u32 = 24;

/// Which child link of a parent points at a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Side {
    Left,
    Right,
}

impl Side {
    fn offset(self) -> u32 {
        match self {
            Side::Left => LEFT,
            Side::Right => RIGHT,
        }
    }
}

/// A link slot: either the root holder or a parent's child field.
#[derive(Clone, Copy, Debug)]
enum Link {
    Root,
    Child(ObjectId, Side),
}

/// The persistent binary search tree.
#[derive(Debug)]
pub struct PersistentBst {
    root: ObjectId, // root object of the anchor pool; holds the tree root OID
    pools: PoolSet,
}

impl PersistentBst {
    /// Creates an empty tree with pools laid out per `pattern`.
    ///
    /// # Errors
    ///
    /// Propagates pool-creation failures.
    pub fn create(rt: &mut Runtime, pattern: Pattern) -> Result<Self, PmemError> {
        let pools = PoolSet::create(rt, pattern, "bst", 2 << 20)?;
        let root = rt.pool_root(pools.anchor(), 8)?;
        rt.write_u64(root, ObjectId::NULL.raw())?;
        rt.persist(root, 8)?;
        Ok(PersistentBst { root, pools })
    }

    fn link_oid(&self, link: Link) -> ObjectId {
        match link {
            Link::Root => self.root,
            Link::Child(parent, side) => parent.add(side.offset()),
        }
    }

    fn read_link(&self, rt: &mut Runtime, link: Link) -> Result<(u64, u64), PmemError> {
        let r = rt.deref(self.link_oid(link), None)?;
        let (v, dep) = rt.read_u64_at(&r, 0)?;
        Ok((v, dep))
    }

    fn write_link(&self, rt: &mut Runtime, link: Link, value: u64) -> Result<(), PmemError> {
        let r = rt.deref(self.link_oid(link), None)?;
        rt.write_u64_at(&r, 0, value)?;
        Ok(())
    }

    /// Descends to `key`. Returns the node and the link that points at it,
    /// or the link where `key` would be inserted.
    fn descend(
        &self,
        rt: &mut Runtime,
        key: u64,
        rng: &mut StdRng,
    ) -> Result<(Link, Option<ObjectId>), PmemError> {
        let (mut cur_raw, mut dep) = self.read_link(rt, Link::Root)?;
        let mut link = Link::Root;
        loop {
            let cur = ObjectId::from_raw(cur_raw);
            loop_branch(rt);
            if cur.is_null() {
                return Ok((link, None));
            }
            let node = rt.deref(cur, Some(dep))?;
            let (k, _) = rt.read_u64_at(&node, KEY)?;
            compare_branch(rt, rng);
            if k == key {
                return Ok((link, Some(cur)));
            }
            let side = if key < k { Side::Left } else { Side::Right };
            let (next, ndep) = rt.read_u64_at(&node, side.offset())?;
            link = Link::Child(cur, side);
            cur_raw = next;
            dep = ndep;
        }
    }

    /// Whether `key` is present.
    ///
    /// # Errors
    ///
    /// Propagates access failures.
    pub fn contains(
        &self,
        rt: &mut Runtime,
        key: u64,
        rng: &mut StdRng,
    ) -> Result<bool, PmemError> {
        Ok(self.descend(rt, key, rng)?.1.is_some())
    }

    /// Inserts `key` if absent; returns whether it was inserted.
    ///
    /// # Errors
    ///
    /// Propagates access/transaction failures.
    pub fn insert(
        &mut self,
        rt: &mut Runtime,
        key: u64,
        rng: &mut StdRng,
    ) -> Result<bool, PmemError> {
        let (link, found) = self.descend(rt, key, rng)?;
        if found.is_some() {
            return Ok(false);
        }
        let pool = self.pools.pool_for(rt, key)?;
        rt.tx_begin(pool)?;
        let node = if rt.config().failure_safety {
            rt.tx_pmalloc(NODE_BYTES as u64)?
        } else {
            rt.pmalloc(pool, NODE_BYTES as u64)?
        };
        let nref = rt.deref(node, None)?;
        rt.write_u64_at(&nref, KEY, key)?;
        rt.write_u64_at(&nref, LEFT, ObjectId::NULL.raw())?;
        rt.write_u64_at(&nref, RIGHT, ObjectId::NULL.raw())?;
        rt.persist(node, NODE_BYTES as u64)?;
        rt.tx_add_range(self.link_oid(link), 8)?;
        self.write_link(rt, link, node.raw())?;
        rt.tx_end()?;
        Ok(true)
    }

    /// Removes `key` if present (replacing with the max of the left
    /// subtree, per Table 5); returns whether a node was removed.
    ///
    /// # Errors
    ///
    /// Propagates access/transaction failures.
    pub fn remove(
        &mut self,
        rt: &mut Runtime,
        key: u64,
        rng: &mut StdRng,
    ) -> Result<bool, PmemError> {
        let (link, Some(node)) = self.descend(rt, key, rng)? else {
            return Ok(false);
        };
        let nref = rt.deref(node, None)?;
        let (left_raw, ldep) = rt.read_u64_at(&nref, LEFT)?;
        let (right_raw, _) = rt.read_u64_at(&nref, RIGHT)?;
        let left = ObjectId::from_raw(left_raw);
        loop_branch(rt);

        if left.is_null() {
            // Splice: the node's right subtree takes its place.
            let victim_pool = node.pool().expect("live node");
            rt.tx_begin(victim_pool)?;
            let mut log = TxLogSet::new();
            log.log(rt, self.link_oid(link), 8)?;
            self.write_link(rt, link, right_raw)?;
            if rt.config().failure_safety {
                rt.tx_pfree(node)?;
            } else {
                rt.pfree(node)?;
            }
            rt.tx_end()?;
            return Ok(true);
        }

        // Find the maximum of the left subtree (rightmost descendant).
        let mut mlink = Link::Child(node, Side::Left);
        let mut cur = left;
        let mut dep = ldep;
        loop {
            let cref = rt.deref(cur, Some(dep))?;
            let (r_raw, rdep) = rt.read_u64_at(&cref, RIGHT)?;
            loop_branch(rt);
            let r = ObjectId::from_raw(r_raw);
            if r.is_null() {
                break;
            }
            mlink = Link::Child(cur, Side::Right);
            cur = r;
            dep = rdep;
        }
        let max_node = cur;
        let mref = rt.deref(max_node, None)?;
        let (max_key, _) = rt.read_u64_at(&mref, KEY)?;
        let (max_left, _) = rt.read_u64_at(&mref, LEFT)?;

        let victim_pool = max_node.pool().expect("live node");
        rt.tx_begin(victim_pool)?;
        let mut log = TxLogSet::new();
        // The removed key's node receives the max key; the max node is
        // spliced out (it has no right child by construction).
        log.log(rt, node.add(KEY), 8)?;
        let nref = rt.deref(node, None)?;
        rt.write_u64_at(&nref, KEY, max_key)?;
        log.log(rt, self.link_oid(mlink), 8)?;
        self.write_link(rt, mlink, max_left)?;
        if rt.config().failure_safety {
            rt.tx_pfree(max_node)?;
        } else {
            rt.pfree(max_node)?;
        }
        rt.tx_end()?;
        Ok(true)
    }

    /// Runs one Table 5 operation: search; remove if found, else insert.
    ///
    /// # Errors
    ///
    /// Propagates access/transaction failures.
    pub fn op(&mut self, rt: &mut Runtime, key: u64, rng: &mut StdRng) -> Result<(), PmemError> {
        if self.remove(rt, key, rng)? {
            return Ok(());
        }
        self.insert(rt, key, rng)?;
        Ok(())
    }

    /// In-order key traversal (test/diagnostic helper).
    ///
    /// # Errors
    ///
    /// Propagates access failures.
    pub fn to_sorted_vec(&self, rt: &mut Runtime) -> Result<Vec<u64>, PmemError> {
        fn walk(rt: &mut Runtime, oid: ObjectId, out: &mut Vec<u64>) -> Result<(), PmemError> {
            if oid.is_null() {
                return Ok(());
            }
            let r = rt.deref(oid, None)?;
            let (k, _) = rt.read_u64_at(&r, KEY)?;
            let (l, _) = rt.read_u64_at(&r, LEFT)?;
            let (rr, _) = rt.read_u64_at(&r, RIGHT)?;
            walk(rt, ObjectId::from_raw(l), out)?;
            out.push(k);
            walk(rt, ObjectId::from_raw(rr), out)?;
            Ok(())
        }
        let mut out = Vec::new();
        let root = ObjectId::from_raw(rt.read_u64(self.root)?);
        walk(rt, root, &mut out)?;
        Ok(out)
    }

    /// The pool set (for pool-count reporting).
    pub fn pools(&self) -> &PoolSet {
        &self.pools
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poat_pmem::RuntimeConfig;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeSet;

    fn setup(pattern: Pattern) -> (Runtime, PersistentBst, StdRng) {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let t = PersistentBst::create(&mut rt, pattern).unwrap();
        (rt, t, StdRng::seed_from_u64(3))
    }

    #[test]
    fn insert_and_contains() {
        let (mut rt, mut t, mut rng) = setup(Pattern::All);
        for k in [50, 25, 75, 10, 60] {
            assert!(t.insert(&mut rt, k, &mut rng).unwrap());
        }
        assert!(!t.insert(&mut rt, 25, &mut rng).unwrap(), "duplicate");
        assert!(t.contains(&mut rt, 60, &mut rng).unwrap());
        assert!(!t.contains(&mut rt, 61, &mut rng).unwrap());
        assert_eq!(t.to_sorted_vec(&mut rt).unwrap(), vec![10, 25, 50, 60, 75]);
    }

    #[test]
    fn remove_leaf_one_child_two_children() {
        let (mut rt, mut t, mut rng) = setup(Pattern::All);
        for k in [50, 25, 75, 10, 30, 27, 35] {
            t.insert(&mut rt, k, &mut rng).unwrap();
        }
        assert!(t.remove(&mut rt, 10, &mut rng).unwrap(), "leaf");
        assert!(t.remove(&mut rt, 75, &mut rng).unwrap(), "no left child");
        assert!(t.remove(&mut rt, 25, &mut rng).unwrap(), "two children");
        assert!(
            t.remove(&mut rt, 50, &mut rng).unwrap(),
            "root with children"
        );
        assert!(!t.remove(&mut rt, 50, &mut rng).unwrap());
        assert_eq!(t.to_sorted_vec(&mut rt).unwrap(), vec![27, 30, 35]);
    }

    #[test]
    fn matches_btreeset_reference() {
        for pattern in [Pattern::All, Pattern::Random] {
            let (mut rt, mut t, mut rng) = setup(pattern);
            let mut reference = BTreeSet::new();
            for _ in 0..400 {
                let k = rng.gen_range(0..120u64);
                if reference.contains(&k) {
                    reference.remove(&k);
                    assert!(t.remove(&mut rt, k, &mut rng).unwrap());
                } else {
                    reference.insert(k);
                    assert!(t.insert(&mut rt, k, &mut rng).unwrap());
                }
            }
            let want: Vec<u64> = reference.into_iter().collect();
            assert_eq!(t.to_sorted_vec(&mut rt).unwrap(), want, "{pattern}");
        }
    }

    #[test]
    fn op_toggles_membership() {
        let (mut rt, mut t, mut rng) = setup(Pattern::All);
        t.op(&mut rt, 5, &mut rng).unwrap();
        assert!(t.contains(&mut rt, 5, &mut rng).unwrap());
        t.op(&mut rt, 5, &mut rng).unwrap();
        assert!(!t.contains(&mut rt, 5, &mut rng).unwrap());
    }

    #[test]
    fn committed_tree_survives_crash() {
        let (mut rt, mut t, mut rng) = setup(Pattern::Each);
        for k in [5, 3, 8, 1] {
            t.insert(&mut rt, k, &mut rng).unwrap();
        }
        let mut rt2 = rt.crash_and_recover(11).unwrap();
        assert_eq!(t.to_sorted_vec(&mut rt2).unwrap(), vec![1, 3, 5, 8]);
    }
}

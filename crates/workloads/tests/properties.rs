//! Property-based tests: every persistent data structure is equivalent to
//! its `std::collections` reference under arbitrary operation sequences,
//! in both translation modes and under all pool patterns.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use poat_pmem::Runtime;
use poat_workloads::bench::BPlusBench;
use poat_workloads::bst::PersistentBst;
use poat_workloads::list::PersistentList;
use poat_workloads::rbt::PersistentRbt;
use poat_workloads::{ExpConfig, Pattern};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn configs() -> impl Strategy<Value = (ExpConfig, Pattern)> {
    (
        prop_oneof![
            Just(ExpConfig::Base),
            Just(ExpConfig::Opt),
            Just(ExpConfig::OptNtx)
        ],
        prop_oneof![
            Just(Pattern::All),
            Just(Pattern::Random),
            Just(Pattern::Each)
        ],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn linked_list_is_a_multiset((cfg, pattern) in configs(),
        keys in prop::collection::vec(0u64..30, 1..60),
    ) {
        let mut rt = Runtime::new(cfg.runtime_config(5));
        let mut rng = StdRng::seed_from_u64(5);
        let mut l = PersistentList::create(&mut rt, pattern).unwrap();
        let mut reference: Vec<u64> = Vec::new();
        for k in keys {
            if let Some(pos) = reference.iter().position(|&x| x == k) {
                reference.remove(pos);
                prop_assert!(l.remove(&mut rt, k, &mut rng).unwrap());
            } else {
                reference.push(k);
                l.insert(&mut rt, k, &mut rng).unwrap();
            }
        }
        let mut got = l.to_vec(&mut rt).unwrap();
        got.sort_unstable();
        reference.sort_unstable();
        prop_assert_eq!(got, reference);
    }

    #[test]
    fn bst_matches_btreeset((cfg, pattern) in configs(),
        keys in prop::collection::vec(0u64..60, 1..80),
    ) {
        let mut rt = Runtime::new(cfg.runtime_config(6));
        let mut rng = StdRng::seed_from_u64(6);
        let mut t = PersistentBst::create(&mut rt, pattern).unwrap();
        let mut reference = BTreeSet::new();
        for k in keys {
            if reference.contains(&k) {
                reference.remove(&k);
                prop_assert!(t.remove(&mut rt, k, &mut rng).unwrap());
            } else {
                reference.insert(k);
                prop_assert!(t.insert(&mut rt, k, &mut rng).unwrap());
            }
        }
        let want: Vec<u64> = reference.into_iter().collect();
        prop_assert_eq!(t.to_sorted_vec(&mut rt).unwrap(), want);
    }

    #[test]
    fn rbt_matches_btreeset_and_keeps_invariants((cfg, pattern) in configs(),
        keys in prop::collection::vec(0u64..60, 1..80),
    ) {
        let mut rt = Runtime::new(cfg.runtime_config(7));
        let mut rng = StdRng::seed_from_u64(7);
        let mut t = PersistentRbt::create(&mut rt, pattern).unwrap();
        let mut reference = BTreeSet::new();
        for k in keys {
            if reference.contains(&k) {
                reference.remove(&k);
                prop_assert!(t.remove(&mut rt, k, &mut rng).unwrap());
            } else {
                reference.insert(k);
                prop_assert!(t.insert(&mut rt, k, &mut rng).unwrap());
            }
        }
        t.check_invariants(&mut rt).unwrap();
        let want: Vec<u64> = reference.into_iter().collect();
        prop_assert_eq!(t.to_sorted_vec(&mut rt).unwrap(), want);
    }

    #[test]
    fn bplus_matches_btreemap_with_crashes((cfg, pattern) in configs(),
        keys in prop::collection::vec(0u64..80, 1..80),
        crash_at in any::<prop::sample::Index>(),
        crash_seed in any::<u64>(),
    ) {
        let mut rt = Runtime::new(cfg.runtime_config(8));
        let mut rng = StdRng::seed_from_u64(8);
        let mut b = BPlusBench::create(&mut rt, pattern).unwrap();
        let mut reference = BTreeMap::new();
        let crash_point = crash_at.index(keys.len());
        for (i, k) in keys.iter().enumerate() {
            if reference.contains_key(k) {
                reference.remove(k);
            } else {
                reference.insert(*k, *k);
            }
            b.op(&mut rt, *k, &mut rng).unwrap();
            // Crash between operations once, mid-history (only meaningful
            // when failure safety is on; NTX runs skip it).
            if i == crash_point && cfg.failure_safety() {
                rt = rt.crash_and_recover(crash_seed).unwrap();
            }
        }
        b.tree().check_invariants(&mut rt).unwrap();
        let want: Vec<(u64, u64)> = reference.into_iter().collect();
        prop_assert_eq!(b.tree().to_sorted_vec(&mut rt).unwrap(), want);
    }
}

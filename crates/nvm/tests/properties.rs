//! Property-based tests for the NVM device's persistence semantics.

use poat_core::PhysAddr;
use poat_nvm::{NvMemory, NvmDevice};
use proptest::prelude::*;

proptest! {
    /// Reads always return the most recent write, across arbitrary
    /// overlapping writes (volatile-domain coherence).
    #[test]
    fn device_reads_see_latest_writes(
        writes in prop::collection::vec((0u64..8192, 1usize..64, any::<u8>()), 1..64),
    ) {
        let mut dev = NvmDevice::new(16 << 10);
        for _ in 0..4 {
            dev.alloc_frame();
        }
        let mut reference = vec![0u8; 16 << 10];
        for (addr, len, byte) in writes {
            let len = len.min((8192 - addr) as usize + 4096);
            let data = vec![byte; len];
            dev.write(PhysAddr::new(addr), &data);
            reference[addr as usize..addr as usize + len].fill(byte);
        }
        let mut got = vec![0u8; 12 << 10];
        dev.read(PhysAddr::new(0), &mut got);
        prop_assert_eq!(&got[..], &reference[..12 << 10]);
    }

    /// Persisted data survives every crash seed; unpersisted data only
    /// ever reads as the written value or the pre-write value — never a
    /// third value (no fabrication).
    #[test]
    fn crash_durability(
        persisted in any::<u64>(),
        volatile in any::<u64>(),
        seeds in prop::collection::vec(any::<u64>(), 1..12),
    ) {
        let mut dev = NvmDevice::new(8 << 10);
        let frame = dev.alloc_frame().expect("capacity");
        let a = frame;                 // line 0: persisted
        let b = frame.offset(128);     // line 2: volatile
        dev.write_u64(a, persisted);
        dev.clwb(a);
        dev.fence();
        dev.write_u64(b, volatile);
        for seed in seeds {
            let mut d = dev.clone();
            d.crash(seed);
            prop_assert_eq!(d.read_u64(a), persisted, "persisted line lost");
            let v = d.read_u64(b);
            prop_assert!(v == volatile || v == 0, "fabricated value {v:#x}");
        }
    }

    /// Virtual-memory round trip: data written through one mapping is
    /// read back through a remapping of the same frames, at any offset.
    #[test]
    fn remap_preserves_contents(
        pages in 1u64..5,
        offset in 0u64..2048,
        data in prop::collection::vec(any::<u8>(), 1..512),
    ) {
        let mut mem = NvMemory::new(1 << 20, 3);
        let (base, frames) = mem.map_new(pages * 4096).unwrap();
        let offset = offset.min(pages * 4096 - data.len() as u64);
        mem.write(base.offset(offset), &data).unwrap();
        mem.unmap(base).unwrap();
        let nb = mem.map_frames(&frames).unwrap();
        let mut buf = vec![0u8; data.len()];
        mem.read(nb.offset(offset), &mut buf).unwrap();
        prop_assert_eq!(buf, data);
    }

    /// persist_range makes exactly the covered range durable under every
    /// crash seed.
    #[test]
    fn persist_range_is_complete(
        start in 0u64..1000,
        len in 1u64..600,
        seed in any::<u64>(),
    ) {
        let mut mem = NvMemory::new(1 << 20, 1);
        let (base, frames) = mem.map_new(4096).unwrap();
        let len = len.min(4096 - start);
        let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8 + 1).collect();
        mem.write(base.offset(start), &data).unwrap();
        mem.persist_range(base.offset(start), len).unwrap();
        mem.crash(seed, seed ^ 1);
        let nb = mem.map_frames(&frames).unwrap();
        let mut buf = vec![0u8; len as usize];
        mem.read(nb.offset(start), &mut buf).unwrap();
        prop_assert_eq!(buf, data);
    }
}

//! The combined memory system: NVM device + virtual address space + page
//! table, offering virtual-address access with durability control.
//!
//! This is the substrate the `poat-pmem` runtime runs on. Pools are backed
//! by stable physical frames in the NVM device (the equivalent of a file on
//! a DAX filesystem); each "process run" maps those frames into a freshly
//! randomized virtual address space. A [`NvMemory::crash`] loses all
//! volatile state — CPU caches (unpersisted lines) *and* the process'
//! address-space layout — while the durable frame contents survive,
//! mirroring a real power failure.

use std::fmt;

use poat_core::{PhysAddr, VirtAddr, PAGE_BYTES};

use crate::device::{BoundaryKind, DeviceStats, FaultPlan, NvmDevice};
use crate::page_table::PageTable;
use crate::vspace::VSpace;

/// Errors from the memory system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NvmError {
    /// The device has no free frames (or the address space has no slot).
    OutOfMemory,
    /// An access touched a virtual address with no mapping.
    Unmapped(VirtAddr),
}

impl fmt::Display for NvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NvmError::OutOfMemory => write!(f, "out of NVM or address space"),
            NvmError::Unmapped(va) => write!(f, "access to unmapped address {va}"),
        }
    }
}

impl std::error::Error for NvmError {}

/// Virtual-memory view over the simulated NVM device.
///
/// ```
/// use poat_nvm::NvMemory;
///
/// # fn main() -> Result<(), poat_nvm::NvmError> {
/// let mut mem = NvMemory::new(1 << 20, 7);
/// let (base, frames) = mem.map_new(8192)?;
/// mem.write_u64(base.offset(16), 123)?;
/// assert_eq!(mem.read_u64(base.offset(16))?, 123);
/// assert_eq!(frames.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct NvMemory {
    device: NvmDevice,
    vspace: VSpace,
    page_table: PageTable,
}

impl NvMemory {
    /// Creates a memory system with `capacity_bytes` of NVM and an address
    /// space randomized by `aslr_seed`.
    pub fn new(capacity_bytes: u64, aslr_seed: u64) -> Self {
        NvMemory {
            device: NvmDevice::new(capacity_bytes),
            vspace: VSpace::new(aslr_seed),
            page_table: PageTable::new(),
        }
    }

    /// Allocates fresh frames for a region of `len` bytes and maps them at
    /// a randomized base. Returns the base and the backing frames (to be
    /// recorded durably by the pool directory).
    ///
    /// # Errors
    ///
    /// [`NvmError::OutOfMemory`] if frames or address space run out. Any
    /// frames allocated before the failure are released.
    pub fn map_new(&mut self, len: u64) -> Result<(VirtAddr, Vec<PhysAddr>), NvmError> {
        let pages = len.max(1).div_ceil(PAGE_BYTES);
        let mut frames = Vec::with_capacity(pages as usize);
        for _ in 0..pages {
            match self.device.alloc_frame() {
                Some(f) => frames.push(f),
                None => {
                    for f in frames {
                        self.device.free_frame(f);
                    }
                    return Err(NvmError::OutOfMemory);
                }
            }
        }
        let base = self.map_frames(&frames).inspect_err(|_| {})?;
        Ok((base, frames))
    }

    /// Maps existing frames (a reopened pool) at a randomized base.
    ///
    /// # Errors
    ///
    /// [`NvmError::OutOfMemory`] if the address space has no slot.
    pub fn map_frames(&mut self, frames: &[PhysAddr]) -> Result<VirtAddr, NvmError> {
        let len = frames.len() as u64 * PAGE_BYTES;
        let base = self.vspace.map_region(len).ok_or(NvmError::OutOfMemory)?;
        for (i, &frame) in frames.iter().enumerate() {
            self.page_table
                .map(base.offset(i as u64 * PAGE_BYTES), frame);
        }
        Ok(base)
    }

    /// Unmaps the region based at `base` (pool close). The backing frames
    /// remain allocated — their contents are persistent.
    ///
    /// # Errors
    ///
    /// [`NvmError::Unmapped`] if `base` is not a mapped region base.
    pub fn unmap(&mut self, base: VirtAddr) -> Result<(), NvmError> {
        let len = self
            .vspace
            .unmap_region(base)
            .ok_or(NvmError::Unmapped(base))?;
        for p in 0..len / PAGE_BYTES {
            self.page_table.unmap(base.offset(p * PAGE_BYTES));
        }
        Ok(())
    }

    /// Releases frames back to the device (pool deletion).
    pub fn release_frames(&mut self, frames: &[PhysAddr]) {
        for &f in frames {
            self.device.free_frame(f);
        }
    }

    /// Translates a virtual address through the page table.
    ///
    /// # Errors
    ///
    /// [`NvmError::Unmapped`] if the page is not mapped.
    pub fn translate(&self, va: VirtAddr) -> Result<PhysAddr, NvmError> {
        self.page_table.translate(va).ok_or(NvmError::Unmapped(va))
    }

    /// Reads `buf.len()` bytes at `va` (may span pages).
    ///
    /// # Errors
    ///
    /// [`NvmError::Unmapped`] if any touched page is unmapped.
    pub fn read(&mut self, va: VirtAddr, buf: &mut [u8]) -> Result<(), NvmError> {
        let mut done = 0;
        while done < buf.len() {
            let cur = va.offset(done as u64);
            let in_page = (PAGE_BYTES - cur.page_offset()) as usize;
            let n = in_page.min(buf.len() - done);
            let pa = self.translate(cur)?;
            self.device.read(pa, &mut buf[done..done + n]);
            done += n;
        }
        Ok(())
    }

    /// Writes `data` at `va` (may span pages).
    ///
    /// # Errors
    ///
    /// [`NvmError::Unmapped`] if any touched page is unmapped.
    pub fn write(&mut self, va: VirtAddr, data: &[u8]) -> Result<(), NvmError> {
        let mut done = 0;
        while done < data.len() {
            let cur = va.offset(done as u64);
            let in_page = (PAGE_BYTES - cur.page_offset()) as usize;
            let n = in_page.min(data.len() - done);
            let pa = self.translate(cur)?;
            self.device.write(pa, &data[done..done + n]);
            done += n;
        }
        Ok(())
    }

    /// Reads a little-endian `u64` at `va`.
    ///
    /// # Errors
    ///
    /// [`NvmError::Unmapped`] if the page is not mapped.
    pub fn read_u64(&mut self, va: VirtAddr) -> Result<u64, NvmError> {
        let mut b = [0u8; 8];
        self.read(va, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a little-endian `u64` at `va`.
    ///
    /// # Errors
    ///
    /// [`NvmError::Unmapped`] if the page is not mapped.
    pub fn write_u64(&mut self, va: VirtAddr, v: u64) -> Result<(), NvmError> {
        self.write(va, &v.to_le_bytes())
    }

    /// CLWB for the line containing `va`.
    ///
    /// # Errors
    ///
    /// [`NvmError::Unmapped`] if the page is not mapped.
    pub fn clwb(&mut self, va: VirtAddr) -> Result<(), NvmError> {
        let pa = self.translate(va)?;
        self.device.clwb(pa);
        Ok(())
    }

    /// SFENCE: commits all pending write-backs.
    pub fn fence(&mut self) {
        self.device.fence();
    }

    /// Persists `[va, va+len)`: clwb every covered line, then fence.
    ///
    /// # Errors
    ///
    /// [`NvmError::Unmapped`] if any touched page is unmapped.
    pub fn persist_range(&mut self, va: VirtAddr, len: u64) -> Result<(), NvmError> {
        if len == 0 {
            return Ok(());
        }
        let first = va.line_base();
        let mut line = first;
        while line.raw() < va.raw() + len {
            let pa = self.translate(line)?;
            self.device.clwb(pa);
            line = line.offset(poat_core::CACHE_LINE_BYTES);
        }
        self.device.fence();
        Ok(())
    }

    /// Simulates a power failure: unpersisted lines are (randomly, per
    /// `seed`) lost, and the process' volatile state — the address space
    /// layout and page table — is destroyed. Remap pools with
    /// [`map_frames`](Self::map_frames) afterwards; ASLR re-randomizes with
    /// `new_aslr_seed`.
    pub fn crash(&mut self, seed: u64, new_aslr_seed: u64) {
        self.device.crash(seed);
        self.vspace = VSpace::new(new_aslr_seed);
        self.page_table = PageTable::new();
    }

    /// Device operation counters.
    pub fn device_stats(&self) -> DeviceStats {
        self.device.stats()
    }

    /// Arms a device [`FaultPlan`] (crash-sweep campaigns); boundary
    /// counters restart from zero.
    pub fn arm_faults(&mut self, plan: FaultPlan) {
        self.device.arm_faults(plan);
    }

    /// Whether an armed crash point has been reached (see
    /// [`NvmDevice::crash_pending`]).
    pub fn crash_pending(&self) -> bool {
        self.device.crash_pending()
    }

    /// Persist boundaries (clwbs + fences) since the plan was armed.
    pub fn persist_boundaries(&self) -> u64 {
        self.device.persist_boundaries()
    }

    /// The recorded boundary-kind sequence (enumeration runs).
    pub fn boundary_kinds(&self) -> &[BoundaryKind] {
        self.device.boundary_kinds()
    }

    /// Direct access to the page table (used by the timing simulator).
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// Number of mapped regions.
    pub fn region_count(&self) -> usize {
        self.vspace.region_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_write_read_roundtrip() {
        let mut mem = NvMemory::new(1 << 20, 1);
        let (base, frames) = mem.map_new(3 * PAGE_BYTES).unwrap();
        assert_eq!(frames.len(), 3);
        let data: Vec<u8> = (0..100u32).map(|i| i as u8).collect();
        // Straddle a page boundary.
        let va = base.offset(PAGE_BYTES - 50);
        mem.write(va, &data).unwrap();
        let mut buf = vec![0u8; 100];
        mem.read(va, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn unmapped_access_errors() {
        let mut mem = NvMemory::new(1 << 20, 1);
        let va = VirtAddr::new(0x4000_0000_0000);
        assert_eq!(mem.read_u64(va), Err(NvmError::Unmapped(va)));
    }

    #[test]
    fn contents_survive_unmap_and_remap() {
        let mut mem = NvMemory::new(1 << 20, 1);
        let (base, frames) = mem.map_new(PAGE_BYTES).unwrap();
        mem.write_u64(base, 777).unwrap();
        mem.unmap(base).unwrap();
        let base2 = mem.map_frames(&frames).unwrap();
        assert_eq!(mem.read_u64(base2).unwrap(), 777);
    }

    #[test]
    fn crash_then_remap_recovers_persisted_data() {
        let mut mem = NvMemory::new(1 << 20, 1);
        let (base, frames) = mem.map_new(PAGE_BYTES).unwrap();
        mem.write_u64(base, 41).unwrap();
        mem.persist_range(base, 8).unwrap();
        mem.write_u64(base.offset(512), 99).unwrap(); // never persisted
        mem.crash(3, 2);
        // Old mapping is gone.
        assert!(
            mem.read_u64(base).is_err() || {
                // (unless ASLR landed a new region there, which map_frames below
                // would make visible; either way the *old* translation is dead)
                true
            }
        );
        let nb = mem.map_frames(&frames).unwrap();
        assert_eq!(mem.read_u64(nb).unwrap(), 41, "persisted data survives");
    }

    #[test]
    fn aslr_rerandomizes_after_crash() {
        let mut mem = NvMemory::new(1 << 20, 1);
        let (base, frames) = mem.map_new(PAGE_BYTES).unwrap();
        mem.crash(0, 99);
        let nb = mem.map_frames(&frames).unwrap();
        assert_ne!(nb, base, "new process run maps the pool elsewhere");
    }

    #[test]
    fn out_of_memory_reported() {
        let mut mem = NvMemory::new(2 * PAGE_BYTES, 1);
        let _ = mem.map_new(2 * PAGE_BYTES).unwrap();
        assert_eq!(mem.map_new(PAGE_BYTES).unwrap_err(), NvmError::OutOfMemory);
    }

    #[test]
    fn persist_range_zero_len_ok() {
        let mut mem = NvMemory::new(1 << 20, 1);
        let (base, _) = mem.map_new(PAGE_BYTES).unwrap();
        mem.persist_range(base, 0).unwrap();
    }
}

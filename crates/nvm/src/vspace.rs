//! Virtual-address-space management with pseudo-ASLR.
//!
//! Pools may be mapped anywhere in a process' address space — that is the
//! whole reason ObjectIDs exist (paper §1: fixed persistent segments defeat
//! Address Space Layout Randomization). The simulated address space
//! therefore places each region at a randomized, page-aligned base chosen
//! by a seeded RNG, and the same pool genuinely lands at different bases in
//! different "processes" (different `VSpace` instances / seeds).

use std::collections::BTreeMap;

use poat_core::{VirtAddr, PAGE_BYTES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Lowest base address handed out (keeps regions away from page 0).
const MMAP_FLOOR: u64 = 0x1000_0000_0000;
/// One past the highest base address handed out (47-bit user space).
const MMAP_CEIL: u64 = 0x7FFF_F000_0000;

/// A process' virtual address space: allocates non-overlapping, randomized,
/// page-aligned regions.
///
/// ```
/// use poat_nvm::VSpace;
///
/// let mut vs = VSpace::new(42);
/// let a = vs.map_region(8192).unwrap();
/// let b = vs.map_region(4096).unwrap();
/// assert_ne!(a, b);
/// assert_eq!(a.page_offset(), 0);
/// // A different process (seed) maps regions elsewhere: ASLR.
/// let mut other = VSpace::new(43);
/// assert_ne!(other.map_region(8192).unwrap(), a);
/// ```
#[derive(Clone, Debug)]
pub struct VSpace {
    /// base → length of each mapped region.
    regions: BTreeMap<u64, u64>,
    rng: StdRng,
}

impl VSpace {
    /// Creates an address space whose layout is randomized by `seed`.
    pub fn new(seed: u64) -> Self {
        VSpace {
            regions: BTreeMap::new(),
            rng: StdRng::seed_from_u64(seed ^ 0xA51A_51A5_1A51_A51A),
        }
    }

    fn overlaps(&self, base: u64, len: u64) -> bool {
        // Predecessor region may extend into [base, base+len).
        if let Some((&b, &l)) = self.regions.range(..=base).next_back() {
            if b + l > base {
                return true;
            }
        }
        // Successor region may start inside it.
        if let Some((&b, _)) = self.regions.range(base..).next() {
            if b < base + len {
                return true;
            }
        }
        false
    }

    /// Maps a region of `len` bytes (rounded up to whole pages) at a
    /// randomized base, returning the base address. Returns `None` only if
    /// no free slot can be found (address space pathologically full).
    pub fn map_region(&mut self, len: u64) -> Option<VirtAddr> {
        let len = len.max(1).div_ceil(PAGE_BYTES) * PAGE_BYTES;
        let span = (MMAP_CEIL - MMAP_FLOOR).checked_sub(len)? / PAGE_BYTES;
        for _ in 0..4096 {
            let base = MMAP_FLOOR + self.rng.gen_range(0..=span) * PAGE_BYTES;
            if !self.overlaps(base, len) {
                self.regions.insert(base, len);
                return Some(VirtAddr::new(base));
            }
        }
        None
    }

    /// Unmaps the region based at `base`, returning its length.
    pub fn unmap_region(&mut self, base: VirtAddr) -> Option<u64> {
        self.regions.remove(&base.raw())
    }

    /// The region containing `va`, as `(base, len)`, if any.
    pub fn region_of(&self, va: VirtAddr) -> Option<(VirtAddr, u64)> {
        let (&b, &l) = self.regions.range(..=va.raw()).next_back()?;
        (va.raw() < b + l).then_some((VirtAddr::new(b), l))
    }

    /// Number of mapped regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Total mapped bytes.
    pub fn mapped_bytes(&self) -> u64 {
        self.regions.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_never_overlap() {
        let mut vs = VSpace::new(1);
        let mut mapped = Vec::new();
        for i in 0..500 {
            let len = ((i % 7) + 1) as u64 * PAGE_BYTES;
            let base = vs.map_region(len).unwrap();
            mapped.push((base.raw(), len));
        }
        mapped.sort_unstable();
        for w in mapped.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "overlap: {w:?}");
        }
    }

    #[test]
    fn bases_are_page_aligned_and_in_range() {
        let mut vs = VSpace::new(2);
        for _ in 0..100 {
            let b = vs.map_region(123).unwrap();
            assert_eq!(b.page_offset(), 0);
            assert!(b.raw() >= MMAP_FLOOR && b.raw() < MMAP_CEIL);
        }
    }

    #[test]
    fn aslr_differs_across_seeds() {
        let a = VSpace::new(10).map_region(PAGE_BYTES).unwrap();
        let b = VSpace::new(11).map_region(PAGE_BYTES).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut x = VSpace::new(5);
        let mut y = VSpace::new(5);
        for _ in 0..20 {
            assert_eq!(x.map_region(PAGE_BYTES), y.map_region(PAGE_BYTES));
        }
    }

    #[test]
    fn region_of_finds_containing_region() {
        let mut vs = VSpace::new(3);
        let base = vs.map_region(3 * PAGE_BYTES).unwrap();
        let (b, l) = vs.region_of(base.offset(2 * PAGE_BYTES + 5)).unwrap();
        assert_eq!(b, base);
        assert_eq!(l, 3 * PAGE_BYTES);
        assert!(vs.region_of(base.offset(3 * PAGE_BYTES)).is_none());
    }

    #[test]
    fn unmap_frees_the_slot() {
        let mut vs = VSpace::new(4);
        let base = vs.map_region(PAGE_BYTES).unwrap();
        assert_eq!(vs.unmap_region(base), Some(PAGE_BYTES));
        assert_eq!(vs.region_count(), 0);
        assert!(vs.region_of(base).is_none());
    }

    #[test]
    fn len_rounded_to_pages() {
        let mut vs = VSpace::new(6);
        vs.map_region(1).unwrap();
        assert_eq!(vs.mapped_bytes(), PAGE_BYTES);
    }
}

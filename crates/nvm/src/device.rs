//! The physical NVM device and its persistence model.
//!
//! Real NVMM sits behind the cache hierarchy: a store is *visible*
//! immediately but only *durable* once its cache line has been written back
//! (`clwb`/`clflushopt`) and ordered (`sfence`). We model exactly that:
//!
//! * every write dirties its 64-byte line in the volatile domain;
//! * [`NvmDevice::clwb`] snapshots the line's current contents into a
//!   pending write-back set;
//! * [`NvmDevice::fence`] commits all pending lines to the durable image;
//! * [`NvmDevice::crash`] reverts the device to its durable image — except
//!   that each still-volatile dirty line *may* have been evicted (and thus
//!   persisted) before the crash, decided per line by a seeded RNG. This is
//!   the adversarial-but-realistic model that write-ahead undo logging must
//!   tolerate (paper §2.1.4).

use std::collections::{BTreeSet, HashMap};

use poat_core::{PhysAddr, CACHE_LINE_BYTES, PAGE_BYTES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PAGE: usize = PAGE_BYTES as usize;
const LINE: usize = CACHE_LINE_BYTES as usize;

type Page = Box<[u8; PAGE]>;

fn zero_page() -> Page {
    Box::new([0u8; PAGE])
}

/// Operation counters for the device.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Bytes written into the volatile domain.
    pub bytes_written: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// `clwb` operations issued.
    pub clwbs: u64,
    /// `sfence` operations issued.
    pub fences: u64,
    /// Physical frames currently allocated.
    pub frames_allocated: u64,
    /// `clwb`s silently dropped by an armed [`FaultPlan`].
    pub clwbs_dropped: u64,
    /// Lines that landed partially (torn) during a crash.
    pub lines_torn: u64,
}

/// Which kind of persist boundary a crash point sits on.
///
/// Every `clwb` and every `fence` is one *persist boundary*; a crash-sweep
/// campaign crashes the device once after each boundary in turn.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoundaryKind {
    /// The boundary immediately after a cache-line write-back was issued.
    Clwb,
    /// The boundary immediately after an ordering fence committed pending
    /// write-backs.
    Fence,
}

/// A deterministic fault-injection plan armed on the device for one
/// crash-sweep run ([`NvmDevice::arm_faults`]).
///
/// The plan is consumed by the next [`NvmDevice::crash`], which also resets
/// the boundary counters, so recovery code runs against an unarmed device.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Trip [`NvmDevice::crash_pending`] after the Nth persist boundary
    /// (1-based, counted from arming).
    pub crash_after: Option<u64>,
    /// Silently drop the Nth `clwb` (1-based): no snapshot is taken and the
    /// line stays dirty, modeling a write-back the hardware lost.
    pub drop_clwb: Option<u64>,
    /// At crash time, persist in-flight lines at 8-byte-word granularity
    /// instead of whole lines (the store-atomicity unit real NVMM
    /// guarantees), so a line can land torn.
    pub torn_lines: bool,
    /// Record the [`BoundaryKind`] of every boundary (enumeration runs).
    pub record_boundaries: bool,
}

/// Process-global telemetry handles for the `nvm.device.*` series,
/// resolved once per device so the access paths stay lock-free. Counters
/// aggregate across all live devices; see `docs/METRICS.md`.
#[derive(Clone, Debug)]
struct DeviceTelemetry {
    reads: poat_telemetry::Counter,
    writes: poat_telemetry::Counter,
    bytes_read: poat_telemetry::Counter,
    bytes_written: poat_telemetry::Counter,
    clwbs: poat_telemetry::Counter,
    fences: poat_telemetry::Counter,
    crashes: poat_telemetry::Counter,
    dropped_clwbs: poat_telemetry::Counter,
    torn_lines: poat_telemetry::Counter,
    frames: poat_telemetry::Gauge,
    read_bytes_hist: poat_telemetry::Histogram,
    write_bytes_hist: poat_telemetry::Histogram,
}

impl DeviceTelemetry {
    fn new() -> Self {
        let r = poat_telemetry::global();
        DeviceTelemetry {
            reads: r.counter("nvm.device.reads"),
            writes: r.counter("nvm.device.writes"),
            bytes_read: r.counter("nvm.device.bytes_read"),
            bytes_written: r.counter("nvm.device.bytes_written"),
            clwbs: r.counter("nvm.device.clwbs"),
            fences: r.counter("nvm.device.fences"),
            crashes: r.counter("nvm.device.crashes"),
            dropped_clwbs: r.counter("nvm.device.dropped_clwbs"),
            torn_lines: r.counter("nvm.device.torn_lines"),
            frames: r.gauge("nvm.device.frames_allocated"),
            read_bytes_hist: r.histogram("nvm.device.read_bytes"),
            write_bytes_hist: r.histogram("nvm.device.write_bytes"),
        }
    }
}

/// A simulated byte-addressable NVM device.
///
/// Storage is sparse at page granularity: frames are materialized on first
/// allocation, so a large nominal capacity (default 1 GB, Table 4) costs
/// only what the workload touches.
///
/// ```
/// use poat_nvm::NvmDevice;
///
/// let mut dev = NvmDevice::new(1 << 20);
/// let frame = dev.alloc_frame().unwrap();
/// dev.write(frame, &[1, 2, 3]);
/// let mut buf = [0u8; 3];
/// dev.read(frame, &mut buf);
/// assert_eq!(buf, [1, 2, 3]);
/// // Not yet durable: a crash may lose it.
/// dev.clwb(frame);
/// dev.fence();
/// // Now it is durable.
/// ```
#[derive(Clone, Debug)]
pub struct NvmDevice {
    capacity: u64,
    /// Current (volatile-domain) contents, sparse by frame number.
    current: HashMap<u64, Page>,
    /// Durable image, sparse by frame number. Pages absent here but present
    /// in `current` were never persisted at all.
    durable: HashMap<u64, Page>,
    /// Lines written since they were last persisted.
    dirty_lines: BTreeSet<u64>,
    /// Lines `clwb`ed since the last fence, with the snapshotted contents.
    pending_lines: HashMap<u64, [u8; LINE]>,
    /// Frame allocator: bump pointer plus free list.
    next_frame: u64,
    free_frames: Vec<u64>,
    /// Armed fault-injection plan (default: no faults).
    plan: FaultPlan,
    /// Persist boundaries (clwbs + fences) since the plan was armed.
    boundaries: u64,
    /// `clwb`s issued since the plan was armed (for `drop_clwb`).
    clwb_seq: u64,
    /// Set once `plan.crash_after` boundaries have passed.
    tripped: bool,
    /// Boundary kinds, recorded when `plan.record_boundaries` is set.
    boundary_log: Vec<BoundaryKind>,
    stats: DeviceStats,
    telemetry: DeviceTelemetry,
}

impl NvmDevice {
    /// Creates a device with the given capacity in bytes (rounded up to a
    /// whole number of 4 KB frames).
    pub fn new(capacity_bytes: u64) -> Self {
        let capacity = capacity_bytes.div_ceil(PAGE_BYTES) * PAGE_BYTES;
        NvmDevice {
            capacity,
            current: HashMap::new(),
            durable: HashMap::new(),
            dirty_lines: BTreeSet::new(),
            pending_lines: HashMap::new(),
            next_frame: 0,
            free_frames: Vec::new(),
            plan: FaultPlan::default(),
            boundaries: 0,
            clwb_seq: 0,
            tripped: false,
            boundary_log: Vec::new(),
            stats: DeviceStats::default(),
            telemetry: DeviceTelemetry::new(),
        }
    }

    /// Arms a fault-injection plan; boundary counters restart from zero.
    ///
    /// The plan stays armed until the next [`crash`](Self::crash) (which
    /// clears it, so recovery runs unarmed) or the next `arm_faults` call.
    pub fn arm_faults(&mut self, plan: FaultPlan) {
        self.plan = plan;
        self.boundaries = 0;
        self.clwb_seq = 0;
        self.tripped = false;
        self.boundary_log.clear();
    }

    /// The currently armed fault plan.
    pub fn fault_plan(&self) -> FaultPlan {
        self.plan
    }

    /// Whether an armed crash point has been reached: the caller should
    /// stop issuing stores and [`crash`](Self::crash) the device.
    pub fn crash_pending(&self) -> bool {
        self.tripped
    }

    /// Persist boundaries (clwbs + fences) since the plan was armed.
    pub fn persist_boundaries(&self) -> u64 {
        self.boundaries
    }

    /// The recorded boundary-kind sequence (enumeration runs armed with
    /// [`FaultPlan::record_boundaries`]).
    pub fn boundary_kinds(&self) -> &[BoundaryKind] {
        &self.boundary_log
    }

    fn boundary(&mut self, kind: BoundaryKind) {
        self.boundaries += 1;
        if self.plan.record_boundaries {
            self.boundary_log.push(kind);
        }
        if self.plan.crash_after == Some(self.boundaries) {
            self.tripped = true;
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Allocates a zeroed physical frame, or `None` if the device is full.
    pub fn alloc_frame(&mut self) -> Option<PhysAddr> {
        let frame = if let Some(f) = self.free_frames.pop() {
            f
        } else if self.next_frame * PAGE_BYTES < self.capacity {
            let f = self.next_frame;
            self.next_frame += 1;
            f
        } else {
            return None;
        };
        self.stats.frames_allocated += 1;
        self.telemetry.frames.set(self.stats.frames_allocated);
        Some(PhysAddr::new(frame * PAGE_BYTES))
    }

    /// Returns a frame to the allocator, discarding its contents.
    ///
    /// # Panics
    ///
    /// Panics if `frame` is not page-aligned.
    pub fn free_frame(&mut self, frame: PhysAddr) {
        assert_eq!(frame.page_offset(), 0, "frame must be page-aligned");
        let n = frame.page_number();
        self.current.remove(&n);
        self.durable.remove(&n);
        let first_line = frame.raw() / CACHE_LINE_BYTES;
        let lines = PAGE_BYTES / CACHE_LINE_BYTES;
        for l in first_line..first_line + lines {
            self.dirty_lines.remove(&l);
            self.pending_lines.remove(&l);
        }
        self.stats.frames_allocated = self.stats.frames_allocated.saturating_sub(1);
        self.telemetry.frames.set(self.stats.frames_allocated);
        self.free_frames.push(n);
    }

    fn page_for_read(&self, page: u64) -> Option<&Page> {
        self.current.get(&page)
    }

    fn page_for_write(&mut self, page: u64) -> &mut Page {
        self.current.entry(page).or_insert_with(zero_page)
    }

    /// Reads `buf.len()` bytes starting at `pa`.
    ///
    /// Unwritten memory reads as zero.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the device capacity.
    pub fn read(&mut self, pa: PhysAddr, buf: &mut [u8]) {
        assert!(
            pa.raw() + buf.len() as u64 <= self.capacity,
            "read past end of device"
        );
        self.stats.bytes_read += buf.len() as u64;
        self.telemetry.reads.inc();
        self.telemetry.bytes_read.add(buf.len() as u64);
        self.telemetry.read_bytes_hist.record(buf.len() as u64);
        let mut addr = pa.raw();
        let mut filled = 0;
        while filled < buf.len() {
            let page = addr / PAGE_BYTES;
            let off = (addr % PAGE_BYTES) as usize;
            let n = (PAGE - off).min(buf.len() - filled);
            match self.page_for_read(page) {
                Some(p) => buf[filled..filled + n].copy_from_slice(&p[off..off + n]),
                None => buf[filled..filled + n].fill(0),
            }
            filled += n;
            addr += n as u64;
        }
    }

    /// Writes `data` starting at `pa`, dirtying the covered cache lines.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the device capacity.
    pub fn write(&mut self, pa: PhysAddr, data: &[u8]) {
        assert!(
            pa.raw() + data.len() as u64 <= self.capacity,
            "write past end of device"
        );
        self.stats.bytes_written += data.len() as u64;
        self.telemetry.writes.inc();
        self.telemetry.bytes_written.add(data.len() as u64);
        self.telemetry.write_bytes_hist.record(data.len() as u64);
        let mut addr = pa.raw();
        let mut written = 0;
        while written < data.len() {
            let page = addr / PAGE_BYTES;
            let off = (addr % PAGE_BYTES) as usize;
            let n = (PAGE - off).min(data.len() - written);
            self.page_for_write(page)[off..off + n].copy_from_slice(&data[written..written + n]);
            written += n;
            addr += n as u64;
        }
        let first = pa.raw() / CACHE_LINE_BYTES;
        let last = (pa.raw() + data.len() as u64 - 1) / CACHE_LINE_BYTES;
        for line in first..=last {
            self.dirty_lines.insert(line);
            // A store to a line that was clwb'ed but not yet fenced makes
            // the pending snapshot stale for the *new* bytes; the line is
            // dirty again and needs another clwb for the new data.
            // (The old snapshot still writes back, as on real hardware.)
        }
    }

    /// Convenience: reads a little-endian `u64` at `pa`.
    pub fn read_u64(&mut self, pa: PhysAddr) -> u64 {
        let mut b = [0u8; 8];
        self.read(pa, &mut b);
        u64::from_le_bytes(b)
    }

    /// Convenience: writes a little-endian `u64` at `pa`.
    pub fn write_u64(&mut self, pa: PhysAddr, v: u64) {
        self.write(pa, &v.to_le_bytes());
    }

    /// Initiates write-back of the cache line containing `pa` (CLWB).
    ///
    /// The line's *current* contents are snapshotted; they become durable at
    /// the next [`fence`](Self::fence).
    pub fn clwb(&mut self, pa: PhysAddr) {
        self.stats.clwbs += 1;
        self.telemetry.clwbs.inc();
        self.clwb_seq += 1;
        if self.plan.drop_clwb == Some(self.clwb_seq) {
            // Injected fault: the write-back never happens; the line stays
            // dirty and is only eviction-persisted (maybe) at crash time.
            self.stats.clwbs_dropped += 1;
            self.telemetry.dropped_clwbs.inc();
        } else {
            let line = pa.raw() / CACHE_LINE_BYTES;
            let mut snap = [0u8; LINE];
            self.read_line(line, &mut snap);
            self.pending_lines.insert(line, snap);
            self.dirty_lines.remove(&line);
        }
        self.boundary(BoundaryKind::Clwb);
    }

    fn read_line(&mut self, line: u64, buf: &mut [u8; LINE]) {
        let addr = line * CACHE_LINE_BYTES;
        let page = addr / PAGE_BYTES;
        let off = (addr % PAGE_BYTES) as usize;
        match self.page_for_read(page) {
            Some(p) => buf.copy_from_slice(&p[off..off + LINE]),
            None => buf.fill(0),
        }
    }

    fn write_durable_line(&mut self, line: u64, data: &[u8; LINE]) {
        let addr = line * CACHE_LINE_BYTES;
        let page = addr / PAGE_BYTES;
        let off = (addr % PAGE_BYTES) as usize;
        let p = self.durable.entry(page).or_insert_with(zero_page);
        p[off..off + LINE].copy_from_slice(data);
    }

    /// Orders all pending write-backs (SFENCE): every line `clwb`ed since
    /// the previous fence is now durable.
    pub fn fence(&mut self) {
        self.stats.fences += 1;
        self.telemetry.fences.inc();
        let pending = std::mem::take(&mut self.pending_lines);
        for (line, data) in pending {
            self.write_durable_line(line, &data);
        }
        self.boundary(BoundaryKind::Fence);
    }

    /// Persists an address range: clwb every covered line, then fence.
    pub fn persist_range(&mut self, pa: PhysAddr, len: u64) {
        if len == 0 {
            return;
        }
        let first = pa.raw() / CACHE_LINE_BYTES;
        let last = (pa.raw() + len - 1) / CACHE_LINE_BYTES;
        for line in first..=last {
            self.clwb(PhysAddr::new(line * CACHE_LINE_BYTES));
        }
        self.fence();
    }

    /// Whether the line containing `pa` has no volatile (unpersisted) data.
    pub fn is_line_clean(&self, pa: PhysAddr) -> bool {
        let line = pa.raw() / CACHE_LINE_BYTES;
        !self.dirty_lines.contains(&line) && !self.pending_lines.contains_key(&line)
    }

    /// Simulates a power failure.
    ///
    /// The device reverts to its durable image, except that each dirty or
    /// pending-but-unfenced line independently *may* have reached the media
    /// (cache eviction or in-flight write-back), decided by `seed`. After
    /// this call the device contents equal the post-recovery media state.
    pub fn crash(&mut self, seed: u64) {
        self.telemetry.crashes.inc();
        let torn = self.plan.torn_lines;
        let mut rng = StdRng::seed_from_u64(seed);
        // Unfenced clwb'ed lines: in-flight; may or may not complete. The
        // lines are visited in address order so the outcome is a function of
        // (contents, seed) alone — hash-map iteration order must not leak
        // into the durable image, or crash replay would not be bit-for-bit
        // reproducible across processes.
        let mut pending: Vec<(u64, [u8; LINE])> = std::mem::take(&mut self.pending_lines)
            .into_iter()
            .collect();
        pending.sort_unstable_by_key(|&(line, _)| line);
        for (line, data) in pending {
            self.crash_line(&mut rng, line, &data, torn);
        }
        // Dirty lines: may have been evicted at any point, carrying the
        // then-current contents. We conservatively use the latest contents;
        // an eviction of intermediate contents is indistinguishable to
        // recovery code that only reads whole committed records.
        let dirty: Vec<u64> = std::mem::take(&mut self.dirty_lines).into_iter().collect();
        for line in dirty {
            let mut snap = [0u8; LINE];
            self.read_line(line, &mut snap);
            self.crash_line(&mut rng, line, &snap, torn);
        }
        // Volatile state is gone: current := durable image. The fault plan
        // is consumed too, so recovery code runs against an unarmed device.
        self.current = self.durable.clone();
        self.arm_faults(FaultPlan::default());
    }

    /// Applies one in-flight line's crash outcome: whole-line all-or-nothing
    /// by default, or per-8-byte-word when the plan tears lines.
    fn crash_line(&mut self, rng: &mut StdRng, line: u64, data: &[u8; LINE], torn: bool) {
        if !torn {
            if rng.gen_bool(0.5) {
                self.write_durable_line(line, data);
            }
            return;
        }
        let words = LINE / 8;
        let mut landed = 0;
        for w in 0..words {
            if rng.gen_bool(0.5) {
                self.write_durable_word(line, w, &data[w * 8..w * 8 + 8]);
                landed += 1;
            }
        }
        if landed != 0 && landed != words {
            self.stats.lines_torn += 1;
            self.telemetry.torn_lines.inc();
        }
    }

    fn write_durable_word(&mut self, line: u64, word: usize, bytes: &[u8]) {
        let addr = line * CACHE_LINE_BYTES + word as u64 * 8;
        let page = addr / PAGE_BYTES;
        let off = (addr % PAGE_BYTES) as usize;
        let p = self.durable.entry(page).or_insert_with(zero_page);
        p[off..off + 8].copy_from_slice(bytes);
    }

    /// Operation counters.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Number of lines with unpersisted data (diagnostics).
    pub fn volatile_lines(&self) -> usize {
        self.dirty_lines.len() + self.pending_lines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_back_what_was_written() {
        let mut dev = NvmDevice::new(1 << 16);
        let pa = dev.alloc_frame().unwrap();
        dev.write(pa.offset(10), b"hello");
        let mut buf = [0u8; 5];
        dev.read(pa.offset(10), &mut buf);
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn unwritten_reads_zero() {
        let mut dev = NvmDevice::new(1 << 16);
        let pa = dev.alloc_frame().unwrap();
        let mut buf = [7u8; 16];
        dev.read(pa, &mut buf);
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn cross_page_write_and_read() {
        let mut dev = NvmDevice::new(1 << 16);
        let a = dev.alloc_frame().unwrap();
        let _b = dev.alloc_frame().unwrap();
        let data: Vec<u8> = (0..200).map(|i| i as u8).collect();
        let start = a.offset(PAGE_BYTES - 100);
        dev.write(start, &data);
        let mut buf = vec![0u8; 200];
        dev.read(start, &mut buf);
        assert_eq!(buf, data);
    }

    #[test]
    fn unpersisted_data_lost_on_unlucky_crash() {
        let mut dev = NvmDevice::new(1 << 16);
        let pa = dev.alloc_frame().unwrap();
        dev.write_u64(pa, 0xDEAD);
        // Find a seed under which the dirty line is dropped.
        let mut dropped = false;
        for seed in 0..64 {
            let mut d = dev.clone();
            d.crash(seed);
            if d.read_u64(pa) == 0 {
                dropped = true;
                break;
            }
        }
        assert!(dropped, "some seed must drop the unpersisted line");
    }

    #[test]
    fn persisted_data_survives_every_crash() {
        let mut dev = NvmDevice::new(1 << 16);
        let pa = dev.alloc_frame().unwrap();
        dev.write_u64(pa, 0xBEEF);
        dev.clwb(pa);
        dev.fence();
        for seed in 0..32 {
            let mut d = dev.clone();
            d.crash(seed);
            assert_eq!(d.read_u64(pa), 0xBEEF, "seed {seed}");
        }
    }

    #[test]
    fn clwb_without_fence_is_not_guaranteed() {
        let mut dev = NvmDevice::new(1 << 16);
        let pa = dev.alloc_frame().unwrap();
        dev.write_u64(pa, 0xAB);
        dev.clwb(pa);
        let (mut survived, mut lost) = (false, false);
        for seed in 0..64 {
            let mut d = dev.clone();
            d.crash(seed);
            match d.read_u64(pa) {
                0xAB => survived = true,
                0 => lost = true,
                v => panic!("torn value {v:#x}"),
            }
        }
        assert!(
            survived && lost,
            "clwb without fence may or may not persist"
        );
    }

    #[test]
    fn persist_range_covers_all_lines() {
        let mut dev = NvmDevice::new(1 << 16);
        let pa = dev.alloc_frame().unwrap();
        let data = vec![0x5Au8; 300];
        dev.write(pa, &data);
        dev.persist_range(pa, 300);
        for seed in 0..8 {
            let mut d = dev.clone();
            d.crash(seed);
            let mut buf = vec![0u8; 300];
            d.read(pa, &mut buf);
            assert_eq!(buf, data, "seed {seed}");
        }
    }

    #[test]
    fn store_after_clwb_needs_new_clwb() {
        let mut dev = NvmDevice::new(1 << 16);
        let pa = dev.alloc_frame().unwrap();
        dev.write_u64(pa, 1);
        dev.clwb(pa);
        dev.write_u64(pa, 2); // re-dirties the line after the snapshot
        dev.fence(); // persists the snapshot (value 1)
        assert!(!dev.is_line_clean(pa), "line dirtied after clwb");
        let mut lost_new = false;
        for seed in 0..64 {
            let mut d = dev.clone();
            d.crash(seed);
            let v = d.read_u64(pa);
            assert!(v == 1 || v == 2, "must be old-snapshot or newer eviction");
            if v == 1 {
                lost_new = true;
            }
        }
        assert!(lost_new, "value 2 was never guaranteed durable");
    }

    #[test]
    fn frame_allocation_and_reuse() {
        let mut dev = NvmDevice::new(3 * PAGE_BYTES);
        let a = dev.alloc_frame().unwrap();
        let b = dev.alloc_frame().unwrap();
        let c = dev.alloc_frame().unwrap();
        assert!(dev.alloc_frame().is_none(), "capacity exhausted");
        assert_ne!(a, b);
        assert_ne!(b, c);
        dev.write_u64(b, 99);
        dev.free_frame(b);
        let b2 = dev.alloc_frame().unwrap();
        assert_eq!(b2, b, "free list reuse");
        assert_eq!(dev.read_u64(b2), 0, "reallocated frame is zeroed");
    }

    #[test]
    fn stats_accumulate() {
        let mut dev = NvmDevice::new(1 << 16);
        let pa = dev.alloc_frame().unwrap();
        dev.write(pa, &[0u8; 8]);
        let mut b = [0u8; 4];
        dev.read(pa, &mut b);
        dev.clwb(pa);
        dev.fence();
        let s = dev.stats();
        assert_eq!(s.bytes_written, 8);
        assert_eq!(s.bytes_read, 4);
        assert_eq!(s.clwbs, 1);
        assert_eq!(s.fences, 1);
        assert_eq!(s.frames_allocated, 1);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn oob_write_panics() {
        let mut dev = NvmDevice::new(PAGE_BYTES);
        dev.write(PhysAddr::new(PAGE_BYTES - 2), &[0u8; 4]);
    }

    #[test]
    fn boundary_counter_trips_at_armed_point() {
        let mut dev = NvmDevice::new(1 << 16);
        let pa = dev.alloc_frame().unwrap();
        dev.arm_faults(FaultPlan {
            crash_after: Some(3),
            record_boundaries: true,
            ..FaultPlan::default()
        });
        dev.write_u64(pa, 1);
        dev.clwb(pa); // boundary 1
        assert!(!dev.crash_pending());
        dev.fence(); // boundary 2
        assert!(!dev.crash_pending());
        dev.write_u64(pa.offset(64), 2);
        dev.clwb(pa.offset(64)); // boundary 3: trip
        assert!(dev.crash_pending());
        assert_eq!(dev.persist_boundaries(), 3);
        assert_eq!(
            dev.boundary_kinds(),
            &[BoundaryKind::Clwb, BoundaryKind::Fence, BoundaryKind::Clwb]
        );
        dev.crash(0);
        assert!(!dev.crash_pending(), "crash consumes the plan");
        assert_eq!(dev.fault_plan(), FaultPlan::default());
        assert_eq!(dev.persist_boundaries(), 0);
    }

    #[test]
    fn dropped_clwb_leaves_line_dirty() {
        let mut dev = NvmDevice::new(1 << 16);
        let pa = dev.alloc_frame().unwrap();
        dev.arm_faults(FaultPlan {
            drop_clwb: Some(1),
            ..FaultPlan::default()
        });
        dev.write_u64(pa, 7);
        dev.clwb(pa); // dropped
        dev.fence();
        assert!(!dev.is_line_clean(pa), "dropped write-back: still dirty");
        assert_eq!(dev.stats().clwbs_dropped, 1);
        // A later clwb of the same line is not dropped.
        dev.clwb(pa);
        dev.fence();
        assert!(dev.is_line_clean(pa));
        for seed in 0..8 {
            let mut d = dev.clone();
            d.crash(seed);
            assert_eq!(d.read_u64(pa), 7, "seed {seed}");
        }
    }

    #[test]
    fn torn_crash_splits_lines_at_word_granularity() {
        let mut dev = NvmDevice::new(1 << 16);
        let pa = dev.alloc_frame().unwrap();
        dev.write_u64(pa, 0x1111);
        dev.write_u64(pa.offset(8), 0x2222);
        dev.clwb(pa); // both words pending in one line
        let mut torn_seen = false;
        for seed in 0..64 {
            let mut d = dev.clone();
            d.arm_faults(FaultPlan {
                torn_lines: true,
                ..FaultPlan::default()
            });
            d.crash(seed);
            let a = d.read_u64(pa);
            let b = d.read_u64(pa.offset(8));
            assert!(a == 0x1111 || a == 0, "word-atomic: {a:#x}");
            assert!(b == 0x2222 || b == 0, "word-atomic: {b:#x}");
            if (a == 0) != (b == 0) {
                torn_seen = true;
                assert!(d.stats().lines_torn >= 1);
            }
        }
        assert!(torn_seen, "some seed must tear the line");
    }

    #[test]
    fn crash_outcome_is_independent_of_insertion_order() {
        // Two devices with identical logical contents but different
        // write/clwb orders must produce identical durable images for the
        // same crash seed: the crash RNG is applied in address order, not
        // hash-map iteration order.
        let build = |order: &[u64]| {
            let mut dev = NvmDevice::new(1 << 20);
            for _ in 0..8 {
                dev.alloc_frame().unwrap();
            }
            for &i in order {
                let pa = PhysAddr::new(i * 64);
                dev.write_u64(pa, i + 1);
                dev.clwb(pa); // all pending, never fenced
            }
            dev
        };
        let fwd: Vec<u64> = (0..24).collect();
        let rev: Vec<u64> = (0..24).rev().collect();
        for seed in 0..16 {
            let mut a = build(&fwd);
            let mut b = build(&rev);
            a.crash(seed);
            b.crash(seed);
            for i in 0..24 {
                let pa = PhysAddr::new(i * 64);
                assert_eq!(
                    a.read_u64(pa),
                    b.read_u64(pa),
                    "seed {seed} line {i}: crash must be content-deterministic"
                );
            }
        }
    }
}

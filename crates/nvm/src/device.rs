//! The physical NVM device and its persistence model.
//!
//! Real NVMM sits behind the cache hierarchy: a store is *visible*
//! immediately but only *durable* once its cache line has been written back
//! (`clwb`/`clflushopt`) and ordered (`sfence`). We model exactly that:
//!
//! * every write dirties its 64-byte line in the volatile domain;
//! * [`NvmDevice::clwb`] snapshots the line's current contents into a
//!   pending write-back set;
//! * [`NvmDevice::fence`] commits all pending lines to the durable image;
//! * [`NvmDevice::crash`] reverts the device to its durable image — except
//!   that each still-volatile dirty line *may* have been evicted (and thus
//!   persisted) before the crash, decided per line by a seeded RNG. This is
//!   the adversarial-but-realistic model that write-ahead undo logging must
//!   tolerate (paper §2.1.4).

use std::collections::{BTreeSet, HashMap};

use poat_core::{PhysAddr, CACHE_LINE_BYTES, PAGE_BYTES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PAGE: usize = PAGE_BYTES as usize;
const LINE: usize = CACHE_LINE_BYTES as usize;

type Page = Box<[u8; PAGE]>;

fn zero_page() -> Page {
    Box::new([0u8; PAGE])
}

/// Operation counters for the device.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Bytes written into the volatile domain.
    pub bytes_written: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// `clwb` operations issued.
    pub clwbs: u64,
    /// `sfence` operations issued.
    pub fences: u64,
    /// Physical frames currently allocated.
    pub frames_allocated: u64,
}

/// Process-global telemetry handles for the `nvm.device.*` series,
/// resolved once per device so the access paths stay lock-free. Counters
/// aggregate across all live devices; see `docs/METRICS.md`.
#[derive(Clone, Debug)]
struct DeviceTelemetry {
    reads: poat_telemetry::Counter,
    writes: poat_telemetry::Counter,
    bytes_read: poat_telemetry::Counter,
    bytes_written: poat_telemetry::Counter,
    clwbs: poat_telemetry::Counter,
    fences: poat_telemetry::Counter,
    crashes: poat_telemetry::Counter,
    frames: poat_telemetry::Gauge,
    read_bytes_hist: poat_telemetry::Histogram,
    write_bytes_hist: poat_telemetry::Histogram,
}

impl DeviceTelemetry {
    fn new() -> Self {
        let r = poat_telemetry::global();
        DeviceTelemetry {
            reads: r.counter("nvm.device.reads"),
            writes: r.counter("nvm.device.writes"),
            bytes_read: r.counter("nvm.device.bytes_read"),
            bytes_written: r.counter("nvm.device.bytes_written"),
            clwbs: r.counter("nvm.device.clwbs"),
            fences: r.counter("nvm.device.fences"),
            crashes: r.counter("nvm.device.crashes"),
            frames: r.gauge("nvm.device.frames_allocated"),
            read_bytes_hist: r.histogram("nvm.device.read_bytes"),
            write_bytes_hist: r.histogram("nvm.device.write_bytes"),
        }
    }
}

/// A simulated byte-addressable NVM device.
///
/// Storage is sparse at page granularity: frames are materialized on first
/// allocation, so a large nominal capacity (default 1 GB, Table 4) costs
/// only what the workload touches.
///
/// ```
/// use poat_nvm::NvmDevice;
///
/// let mut dev = NvmDevice::new(1 << 20);
/// let frame = dev.alloc_frame().unwrap();
/// dev.write(frame, &[1, 2, 3]);
/// let mut buf = [0u8; 3];
/// dev.read(frame, &mut buf);
/// assert_eq!(buf, [1, 2, 3]);
/// // Not yet durable: a crash may lose it.
/// dev.clwb(frame);
/// dev.fence();
/// // Now it is durable.
/// ```
#[derive(Clone, Debug)]
pub struct NvmDevice {
    capacity: u64,
    /// Current (volatile-domain) contents, sparse by frame number.
    current: HashMap<u64, Page>,
    /// Durable image, sparse by frame number. Pages absent here but present
    /// in `current` were never persisted at all.
    durable: HashMap<u64, Page>,
    /// Lines written since they were last persisted.
    dirty_lines: BTreeSet<u64>,
    /// Lines `clwb`ed since the last fence, with the snapshotted contents.
    pending_lines: HashMap<u64, [u8; LINE]>,
    /// Frame allocator: bump pointer plus free list.
    next_frame: u64,
    free_frames: Vec<u64>,
    stats: DeviceStats,
    telemetry: DeviceTelemetry,
}

impl NvmDevice {
    /// Creates a device with the given capacity in bytes (rounded up to a
    /// whole number of 4 KB frames).
    pub fn new(capacity_bytes: u64) -> Self {
        let capacity = capacity_bytes.div_ceil(PAGE_BYTES) * PAGE_BYTES;
        NvmDevice {
            capacity,
            current: HashMap::new(),
            durable: HashMap::new(),
            dirty_lines: BTreeSet::new(),
            pending_lines: HashMap::new(),
            next_frame: 0,
            free_frames: Vec::new(),
            stats: DeviceStats::default(),
            telemetry: DeviceTelemetry::new(),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Allocates a zeroed physical frame, or `None` if the device is full.
    pub fn alloc_frame(&mut self) -> Option<PhysAddr> {
        let frame = if let Some(f) = self.free_frames.pop() {
            f
        } else if self.next_frame * PAGE_BYTES < self.capacity {
            let f = self.next_frame;
            self.next_frame += 1;
            f
        } else {
            return None;
        };
        self.stats.frames_allocated += 1;
        self.telemetry.frames.set(self.stats.frames_allocated);
        Some(PhysAddr::new(frame * PAGE_BYTES))
    }

    /// Returns a frame to the allocator, discarding its contents.
    ///
    /// # Panics
    ///
    /// Panics if `frame` is not page-aligned.
    pub fn free_frame(&mut self, frame: PhysAddr) {
        assert_eq!(frame.page_offset(), 0, "frame must be page-aligned");
        let n = frame.page_number();
        self.current.remove(&n);
        self.durable.remove(&n);
        let first_line = frame.raw() / CACHE_LINE_BYTES;
        let lines = PAGE_BYTES / CACHE_LINE_BYTES;
        for l in first_line..first_line + lines {
            self.dirty_lines.remove(&l);
            self.pending_lines.remove(&l);
        }
        self.stats.frames_allocated = self.stats.frames_allocated.saturating_sub(1);
        self.telemetry.frames.set(self.stats.frames_allocated);
        self.free_frames.push(n);
    }

    fn page_for_read(&self, page: u64) -> Option<&Page> {
        self.current.get(&page)
    }

    fn page_for_write(&mut self, page: u64) -> &mut Page {
        self.current.entry(page).or_insert_with(zero_page)
    }

    /// Reads `buf.len()` bytes starting at `pa`.
    ///
    /// Unwritten memory reads as zero.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the device capacity.
    pub fn read(&mut self, pa: PhysAddr, buf: &mut [u8]) {
        assert!(
            pa.raw() + buf.len() as u64 <= self.capacity,
            "read past end of device"
        );
        self.stats.bytes_read += buf.len() as u64;
        self.telemetry.reads.inc();
        self.telemetry.bytes_read.add(buf.len() as u64);
        self.telemetry.read_bytes_hist.record(buf.len() as u64);
        let mut addr = pa.raw();
        let mut filled = 0;
        while filled < buf.len() {
            let page = addr / PAGE_BYTES;
            let off = (addr % PAGE_BYTES) as usize;
            let n = (PAGE - off).min(buf.len() - filled);
            match self.page_for_read(page) {
                Some(p) => buf[filled..filled + n].copy_from_slice(&p[off..off + n]),
                None => buf[filled..filled + n].fill(0),
            }
            filled += n;
            addr += n as u64;
        }
    }

    /// Writes `data` starting at `pa`, dirtying the covered cache lines.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the device capacity.
    pub fn write(&mut self, pa: PhysAddr, data: &[u8]) {
        assert!(
            pa.raw() + data.len() as u64 <= self.capacity,
            "write past end of device"
        );
        self.stats.bytes_written += data.len() as u64;
        self.telemetry.writes.inc();
        self.telemetry.bytes_written.add(data.len() as u64);
        self.telemetry.write_bytes_hist.record(data.len() as u64);
        let mut addr = pa.raw();
        let mut written = 0;
        while written < data.len() {
            let page = addr / PAGE_BYTES;
            let off = (addr % PAGE_BYTES) as usize;
            let n = (PAGE - off).min(data.len() - written);
            self.page_for_write(page)[off..off + n].copy_from_slice(&data[written..written + n]);
            written += n;
            addr += n as u64;
        }
        let first = pa.raw() / CACHE_LINE_BYTES;
        let last = (pa.raw() + data.len() as u64 - 1) / CACHE_LINE_BYTES;
        for line in first..=last {
            self.dirty_lines.insert(line);
            // A store to a line that was clwb'ed but not yet fenced makes
            // the pending snapshot stale for the *new* bytes; the line is
            // dirty again and needs another clwb for the new data.
            // (The old snapshot still writes back, as on real hardware.)
        }
    }

    /// Convenience: reads a little-endian `u64` at `pa`.
    pub fn read_u64(&mut self, pa: PhysAddr) -> u64 {
        let mut b = [0u8; 8];
        self.read(pa, &mut b);
        u64::from_le_bytes(b)
    }

    /// Convenience: writes a little-endian `u64` at `pa`.
    pub fn write_u64(&mut self, pa: PhysAddr, v: u64) {
        self.write(pa, &v.to_le_bytes());
    }

    /// Initiates write-back of the cache line containing `pa` (CLWB).
    ///
    /// The line's *current* contents are snapshotted; they become durable at
    /// the next [`fence`](Self::fence).
    pub fn clwb(&mut self, pa: PhysAddr) {
        self.stats.clwbs += 1;
        self.telemetry.clwbs.inc();
        let line = pa.raw() / CACHE_LINE_BYTES;
        let mut snap = [0u8; LINE];
        self.read_line(line, &mut snap);
        self.pending_lines.insert(line, snap);
        self.dirty_lines.remove(&line);
    }

    fn read_line(&mut self, line: u64, buf: &mut [u8; LINE]) {
        let addr = line * CACHE_LINE_BYTES;
        let page = addr / PAGE_BYTES;
        let off = (addr % PAGE_BYTES) as usize;
        match self.page_for_read(page) {
            Some(p) => buf.copy_from_slice(&p[off..off + LINE]),
            None => buf.fill(0),
        }
    }

    fn write_durable_line(&mut self, line: u64, data: &[u8; LINE]) {
        let addr = line * CACHE_LINE_BYTES;
        let page = addr / PAGE_BYTES;
        let off = (addr % PAGE_BYTES) as usize;
        let p = self.durable.entry(page).or_insert_with(zero_page);
        p[off..off + LINE].copy_from_slice(data);
    }

    /// Orders all pending write-backs (SFENCE): every line `clwb`ed since
    /// the previous fence is now durable.
    pub fn fence(&mut self) {
        self.stats.fences += 1;
        self.telemetry.fences.inc();
        let pending = std::mem::take(&mut self.pending_lines);
        for (line, data) in pending {
            self.write_durable_line(line, &data);
        }
    }

    /// Persists an address range: clwb every covered line, then fence.
    pub fn persist_range(&mut self, pa: PhysAddr, len: u64) {
        if len == 0 {
            return;
        }
        let first = pa.raw() / CACHE_LINE_BYTES;
        let last = (pa.raw() + len - 1) / CACHE_LINE_BYTES;
        for line in first..=last {
            self.clwb(PhysAddr::new(line * CACHE_LINE_BYTES));
        }
        self.fence();
    }

    /// Whether the line containing `pa` has no volatile (unpersisted) data.
    pub fn is_line_clean(&self, pa: PhysAddr) -> bool {
        let line = pa.raw() / CACHE_LINE_BYTES;
        !self.dirty_lines.contains(&line) && !self.pending_lines.contains_key(&line)
    }

    /// Simulates a power failure.
    ///
    /// The device reverts to its durable image, except that each dirty or
    /// pending-but-unfenced line independently *may* have reached the media
    /// (cache eviction or in-flight write-back), decided by `seed`. After
    /// this call the device contents equal the post-recovery media state.
    pub fn crash(&mut self, seed: u64) {
        self.telemetry.crashes.inc();
        let mut rng = StdRng::seed_from_u64(seed);
        // Unfenced clwb'ed lines: in-flight; may or may not complete.
        let pending = std::mem::take(&mut self.pending_lines);
        for (line, data) in pending {
            if rng.gen_bool(0.5) {
                self.write_durable_line(line, &data);
            }
        }
        // Dirty lines: may have been evicted at any point, carrying the
        // then-current contents. We conservatively use the latest contents;
        // an eviction of intermediate contents is indistinguishable to
        // recovery code that only reads whole committed records.
        let dirty: Vec<u64> = std::mem::take(&mut self.dirty_lines).into_iter().collect();
        for line in dirty {
            if rng.gen_bool(0.5) {
                let mut snap = [0u8; LINE];
                self.read_line(line, &mut snap);
                self.write_durable_line(line, &snap);
            }
        }
        // Volatile state is gone: current := durable image.
        self.current = self.durable.clone();
    }

    /// Operation counters.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Number of lines with unpersisted data (diagnostics).
    pub fn volatile_lines(&self) -> usize {
        self.dirty_lines.len() + self.pending_lines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_back_what_was_written() {
        let mut dev = NvmDevice::new(1 << 16);
        let pa = dev.alloc_frame().unwrap();
        dev.write(pa.offset(10), b"hello");
        let mut buf = [0u8; 5];
        dev.read(pa.offset(10), &mut buf);
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn unwritten_reads_zero() {
        let mut dev = NvmDevice::new(1 << 16);
        let pa = dev.alloc_frame().unwrap();
        let mut buf = [7u8; 16];
        dev.read(pa, &mut buf);
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn cross_page_write_and_read() {
        let mut dev = NvmDevice::new(1 << 16);
        let a = dev.alloc_frame().unwrap();
        let _b = dev.alloc_frame().unwrap();
        let data: Vec<u8> = (0..200).map(|i| i as u8).collect();
        let start = a.offset(PAGE_BYTES - 100);
        dev.write(start, &data);
        let mut buf = vec![0u8; 200];
        dev.read(start, &mut buf);
        assert_eq!(buf, data);
    }

    #[test]
    fn unpersisted_data_lost_on_unlucky_crash() {
        let mut dev = NvmDevice::new(1 << 16);
        let pa = dev.alloc_frame().unwrap();
        dev.write_u64(pa, 0xDEAD);
        // Find a seed under which the dirty line is dropped.
        let mut dropped = false;
        for seed in 0..64 {
            let mut d = dev.clone();
            d.crash(seed);
            if d.read_u64(pa) == 0 {
                dropped = true;
                break;
            }
        }
        assert!(dropped, "some seed must drop the unpersisted line");
    }

    #[test]
    fn persisted_data_survives_every_crash() {
        let mut dev = NvmDevice::new(1 << 16);
        let pa = dev.alloc_frame().unwrap();
        dev.write_u64(pa, 0xBEEF);
        dev.clwb(pa);
        dev.fence();
        for seed in 0..32 {
            let mut d = dev.clone();
            d.crash(seed);
            assert_eq!(d.read_u64(pa), 0xBEEF, "seed {seed}");
        }
    }

    #[test]
    fn clwb_without_fence_is_not_guaranteed() {
        let mut dev = NvmDevice::new(1 << 16);
        let pa = dev.alloc_frame().unwrap();
        dev.write_u64(pa, 0xAB);
        dev.clwb(pa);
        let (mut survived, mut lost) = (false, false);
        for seed in 0..64 {
            let mut d = dev.clone();
            d.crash(seed);
            match d.read_u64(pa) {
                0xAB => survived = true,
                0 => lost = true,
                v => panic!("torn value {v:#x}"),
            }
        }
        assert!(
            survived && lost,
            "clwb without fence may or may not persist"
        );
    }

    #[test]
    fn persist_range_covers_all_lines() {
        let mut dev = NvmDevice::new(1 << 16);
        let pa = dev.alloc_frame().unwrap();
        let data = vec![0x5Au8; 300];
        dev.write(pa, &data);
        dev.persist_range(pa, 300);
        for seed in 0..8 {
            let mut d = dev.clone();
            d.crash(seed);
            let mut buf = vec![0u8; 300];
            d.read(pa, &mut buf);
            assert_eq!(buf, data, "seed {seed}");
        }
    }

    #[test]
    fn store_after_clwb_needs_new_clwb() {
        let mut dev = NvmDevice::new(1 << 16);
        let pa = dev.alloc_frame().unwrap();
        dev.write_u64(pa, 1);
        dev.clwb(pa);
        dev.write_u64(pa, 2); // re-dirties the line after the snapshot
        dev.fence(); // persists the snapshot (value 1)
        assert!(!dev.is_line_clean(pa), "line dirtied after clwb");
        let mut lost_new = false;
        for seed in 0..64 {
            let mut d = dev.clone();
            d.crash(seed);
            let v = d.read_u64(pa);
            assert!(v == 1 || v == 2, "must be old-snapshot or newer eviction");
            if v == 1 {
                lost_new = true;
            }
        }
        assert!(lost_new, "value 2 was never guaranteed durable");
    }

    #[test]
    fn frame_allocation_and_reuse() {
        let mut dev = NvmDevice::new(3 * PAGE_BYTES);
        let a = dev.alloc_frame().unwrap();
        let b = dev.alloc_frame().unwrap();
        let c = dev.alloc_frame().unwrap();
        assert!(dev.alloc_frame().is_none(), "capacity exhausted");
        assert_ne!(a, b);
        assert_ne!(b, c);
        dev.write_u64(b, 99);
        dev.free_frame(b);
        let b2 = dev.alloc_frame().unwrap();
        assert_eq!(b2, b, "free list reuse");
        assert_eq!(dev.read_u64(b2), 0, "reallocated frame is zeroed");
    }

    #[test]
    fn stats_accumulate() {
        let mut dev = NvmDevice::new(1 << 16);
        let pa = dev.alloc_frame().unwrap();
        dev.write(pa, &[0u8; 8]);
        let mut b = [0u8; 4];
        dev.read(pa, &mut b);
        dev.clwb(pa);
        dev.fence();
        let s = dev.stats();
        assert_eq!(s.bytes_written, 8);
        assert_eq!(s.bytes_read, 4);
        assert_eq!(s.clwbs, 1);
        assert_eq!(s.fences, 1);
        assert_eq!(s.frames_allocated, 1);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn oob_write_panics() {
        let mut dev = NvmDevice::new(PAGE_BYTES);
        dev.write(PhysAddr::new(PAGE_BYTES - 2), &[0u8; 4]);
    }
}

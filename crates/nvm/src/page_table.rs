//! Conventional VA→PA page mappings (4 KB pages).
//!
//! Each page of a pool is individually mapped to a physical frame by the
//! virtual memory manager in the conventional way (paper §2.1.3, Figure 2).
//! The TLB caches these mappings; the *Parallel* POLB refill additionally
//! walks this table to find the physical frame (paper §4.2, Figure 7).

use std::collections::HashMap;

use poat_core::{PhysAddr, VirtAddr, PAGE_BYTES};

/// A per-process page table.
///
/// ```
/// use poat_core::{PhysAddr, VirtAddr};
/// use poat_nvm::PageTable;
///
/// let mut pt = PageTable::new();
/// pt.map(VirtAddr::new(0x5000), PhysAddr::new(0x1000));
/// assert_eq!(pt.translate(VirtAddr::new(0x5123)), Some(PhysAddr::new(0x1123)));
/// assert_eq!(pt.translate(VirtAddr::new(0x9000)), None);
/// ```
#[derive(Clone, Debug, Default)]
pub struct PageTable {
    /// virtual page number → physical frame base.
    entries: HashMap<u64, PhysAddr>,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps the page containing `va` to the frame based at `frame`.
    ///
    /// # Panics
    ///
    /// Panics if `va` or `frame` is not page-aligned, or if the page is
    /// already mapped (double-mapping is a VM-manager bug).
    pub fn map(&mut self, va: VirtAddr, frame: PhysAddr) {
        assert_eq!(va.page_offset(), 0, "virtual page must be aligned");
        assert_eq!(frame.page_offset(), 0, "frame must be aligned");
        let prev = self.entries.insert(va.page_number(), frame);
        assert!(prev.is_none(), "page {va} double-mapped");
    }

    /// Removes the mapping for the page containing `va`, returning the
    /// frame it mapped to.
    pub fn unmap(&mut self, va: VirtAddr) -> Option<PhysAddr> {
        self.entries.remove(&va.page_number())
    }

    /// Translates a virtual address to a physical address.
    pub fn translate(&self, va: VirtAddr) -> Option<PhysAddr> {
        self.entries
            .get(&va.page_number())
            .map(|frame| frame.offset(va.page_offset()))
    }

    /// The physical frame backing the page containing `va`.
    pub fn frame_of(&self, va: VirtAddr) -> Option<PhysAddr> {
        self.entries.get(&va.page_number()).copied()
    }

    /// Number of mapped pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over every `(virtual page number, frame base)` mapping,
    /// in arbitrary order. This is how the simulator builds its flat
    /// replay-time lookup structure without going through the hashed
    /// `translate` path once per op.
    pub fn mappings(&self) -> impl Iterator<Item = (u64, PhysAddr)> + '_ {
        self.entries.iter().map(|(&page, &frame)| (page, frame))
    }

    /// Iterates over the frames backing the pages of `[base, base+len)`.
    pub fn frames_in(&self, base: VirtAddr, len: u64) -> impl Iterator<Item = PhysAddr> + '_ {
        let first = base.page_number();
        let last = (base.raw() + len.max(1) - 1) / PAGE_BYTES;
        (first..=last).filter_map(move |p| self.entries.get(&p).copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translate_preserves_offset() {
        let mut pt = PageTable::new();
        pt.map(VirtAddr::new(2 * PAGE_BYTES), PhysAddr::new(7 * PAGE_BYTES));
        let got = pt.translate(VirtAddr::new(2 * PAGE_BYTES + 99)).unwrap();
        assert_eq!(got, PhysAddr::new(7 * PAGE_BYTES + 99));
    }

    #[test]
    fn unmapped_is_none() {
        let pt = PageTable::new();
        assert!(pt.translate(VirtAddr::new(0x1000)).is_none());
    }

    #[test]
    #[should_panic(expected = "double-mapped")]
    fn double_map_panics() {
        let mut pt = PageTable::new();
        pt.map(VirtAddr::new(0x1000), PhysAddr::new(0x1000));
        pt.map(VirtAddr::new(0x1000), PhysAddr::new(0x2000));
    }

    #[test]
    fn unmap_then_remap() {
        let mut pt = PageTable::new();
        pt.map(VirtAddr::new(0x1000), PhysAddr::new(0x3000));
        assert_eq!(pt.unmap(VirtAddr::new(0x1000)), Some(PhysAddr::new(0x3000)));
        pt.map(VirtAddr::new(0x1000), PhysAddr::new(0x4000));
        assert_eq!(
            pt.frame_of(VirtAddr::new(0x1fff)),
            Some(PhysAddr::new(0x4000))
        );
    }

    #[test]
    fn frames_in_range() {
        let mut pt = PageTable::new();
        for i in 0..4u64 {
            pt.map(
                VirtAddr::new(i * PAGE_BYTES),
                PhysAddr::new((10 + i) * PAGE_BYTES),
            );
        }
        let frames: Vec<_> = pt
            .frames_in(VirtAddr::new(PAGE_BYTES), 2 * PAGE_BYTES)
            .collect();
        assert_eq!(
            frames,
            vec![
                PhysAddr::new(11 * PAGE_BYTES),
                PhysAddr::new(12 * PAGE_BYTES)
            ]
        );
    }
}

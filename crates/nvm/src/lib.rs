// SPDX-License-Identifier: MIT OR Apache-2.0
//! # poat-nvm — simulated non-volatile main memory
//!
//! The paper evaluates on a machine whose main memory is byte-addressable
//! NVM (battery-backed DRAM timing, Table 4). We do not have such hardware,
//! so this crate builds the closest synthetic equivalent:
//!
//! * [`device::NvmDevice`] — a sparse, page-granular physical memory with a
//!   **persistence model**: stores land in a (simulated) volatile cache
//!   domain and only become durable after `clwb` + `sfence`, mirroring the
//!   Intel persistence instructions the paper's `persist()` uses. A
//!   [`device::NvmDevice::crash`] operation discards an arbitrary
//!   (seeded-random) subset of non-persisted lines, which is exactly the
//!   failure model undo logging must survive.
//! * [`vspace::VSpace`] — a per-process virtual address space that maps
//!   pools at randomized base addresses (pseudo-ASLR). ObjectIDs exist
//!   precisely because pools can land anywhere, so the simulation keeps
//!   that property observable.
//! * [`page_table::PageTable`] — conventional 4 KB-page VA→PA mappings, as
//!   used by the TLB and by the *Parallel* POLB refill path (POT walk +
//!   page-table walk).
//! * [`NvMemory`] — a façade combining the three, offering virtual-address
//!   reads/writes with durability control. This is the substrate the
//!   `poat-pmem` runtime runs on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod memory;
pub mod page_table;
pub mod vspace;

pub use device::{BoundaryKind, DeviceStats, FaultPlan, NvmDevice};
pub use memory::{NvMemory, NvmError};
pub use page_table::PageTable;
pub use vspace::VSpace;

//! Plain-text table rendering and helpers for experiment output.

/// A simple fixed-width text table (monospace, right-aligned numbers).
#[derive(Clone, Debug)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        TextTable {
            title: title.to_owned(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    line.push_str(&format!("{:<w$}", c, w = widths[i]));
                } else {
                    line.push_str(&format!("  {:>w$}", c, w = widths[i]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Geometric mean of a non-empty slice (0 if empty).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Formats a ratio as `1.96x`.
pub fn fx(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a fraction as a percentage `12.3%`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new("Demo", &["Bench", "Speedup"]);
        t.row(vec!["LL".into(), fx(1.96)]);
        t.row(vec!["GeoMean".into(), fx(1.5)]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("1.96x"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[3].len(), lines[4].len(), "aligned rows");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = TextTable::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn geomean_of_known_values() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn formatters() {
        assert_eq!(fx(1.957), "1.96x");
        assert_eq!(pct(0.439), "43.9%");
    }
}

//! CSV emission for every artifact, so the figures can be plotted with
//! any external tool (`repro <artifact> --csv DIR`).

use std::io::Write;
use std::path::Path;

use crate::ablations::AblationResults;
use crate::experiments::{
    Fig10Row, Fig11Row, Fig12Row, MainResults, SpeedupRow, Table2Row, POLB_SIZES, POT_LATENCIES,
};

fn write(dir: &Path, name: &str, header: &str, rows: Vec<String>) -> std::io::Result<()> {
    let mut f = std::fs::File::create(dir.join(name))?;
    writeln!(f, "{header}")?;
    for r in rows {
        writeln!(f, "{r}")?;
    }
    Ok(())
}

/// Writes `table2.csv`.
pub fn table2(dir: &Path, rows: &[Table2Row]) -> std::io::Result<()> {
    write(
        dir,
        "table2.csv",
        "bench,insns_all,insns_each,predictor_miss_each",
        rows.iter()
            .map(|r| {
                format!(
                    "{},{:.2},{:.2},{:.4}",
                    r.bench, r.insns_all, r.insns_each, r.miss_each
                )
            })
            .collect(),
    )
}

fn speedups(dir: &Path, name: &str, rows: &[SpeedupRow]) -> std::io::Result<()> {
    write(
        dir,
        name,
        "bench,pattern,pipelined,parallel,ideal",
        rows.iter()
            .map(|r| {
                format!(
                    "{},{},{:.4},{},{:.4}",
                    r.bench,
                    r.pattern,
                    r.pipelined,
                    r.parallel.map(|p| format!("{p:.4}")).unwrap_or_default(),
                    r.ideal
                )
            })
            .collect(),
    )
}

/// Writes `fig9a.csv`, `fig9b.csv`, `table8.csv`, and `instrs.csv`.
pub fn main_results(dir: &Path, m: &MainResults) -> std::io::Result<()> {
    speedups(dir, "fig9a.csv", &m.fig9a)?;
    speedups(dir, "fig9b.csv", &m.fig9b)?;
    write(
        dir,
        "table8.csv",
        "bench,par_all,par_random,par_each,pipe_each",
        m.table8
            .iter()
            .map(|r| {
                format!(
                    "{},{:.4},{},{:.4},{:.4}",
                    r.bench,
                    r.par_all,
                    r.par_random.map(|p| format!("{p:.4}")).unwrap_or_default(),
                    r.par_each,
                    r.pipe_each
                )
            })
            .collect(),
    )?;
    write(
        dir,
        "instrs.csv",
        "bench,pattern,base_instructions,opt_instructions,reduction",
        m.instrs
            .iter()
            .map(|r| {
                format!(
                    "{},{},{},{},{:.4}",
                    r.bench, r.pattern, r.base_instructions, r.opt_instructions, r.reduction
                )
            })
            .collect(),
    )
}

/// Writes `fig10.csv`.
pub fn fig10(dir: &Path, rows: &[Fig10Row]) -> std::io::Result<()> {
    write(
        dir,
        "fig10.csv",
        "bench,pattern,pipelined,parallel",
        rows.iter()
            .map(|r| {
                format!(
                    "{},{},{:.4},{:.4}",
                    r.bench, r.pattern, r.pipelined, r.parallel
                )
            })
            .collect(),
    )
}

/// Writes `fig11.csv` and `table9.csv` (long format: one row per point).
pub fn fig11(dir: &Path, rows: &[Fig11Row]) -> std::io::Result<()> {
    let mut speed = Vec::new();
    let mut miss = Vec::new();
    for r in rows {
        for (i, &size) in POLB_SIZES.iter().enumerate() {
            speed.push(format!(
                "{},Pipelined,{size},{:.4}",
                r.bench, r.pipelined[i]
            ));
            speed.push(format!("{},Parallel,{size},{:.4}", r.bench, r.parallel[i]));
            miss.push(format!(
                "{},Pipelined,{size},{:.4}",
                r.bench, r.pipe_miss[i]
            ));
            miss.push(format!("{},Parallel,{size},{:.4}", r.bench, r.par_miss[i]));
        }
    }
    write(dir, "fig11.csv", "bench,design,polb_entries,speedup", speed)?;
    write(
        dir,
        "table9.csv",
        "bench,design,polb_entries,miss_rate",
        miss,
    )
}

/// Writes `fig12.csv` (long format).
pub fn fig12(dir: &Path, rows: &[Fig12Row]) -> std::io::Result<()> {
    let mut out = Vec::new();
    for r in rows {
        for (i, lat) in POT_LATENCIES.iter().enumerate() {
            let lat = lat.map(|l| l.to_string()).unwrap_or_else(|| "ideal".into());
            out.push(format!("{},{lat},{:.4}", r.bench, r.speedups[i]));
        }
    }
    write(dir, "fig12.csv", "bench,pot_walk_cycles,speedup", out)
}

/// Writes the four ablation CSVs.
pub fn ablations(dir: &Path, a: &AblationResults) -> std::io::Result<()> {
    write(
        dir,
        "ablation_predictor.csv",
        "bench,pattern,base_cycles,no_predictor_cycles,slowdown,opt_speedup_vs_nopred",
        a.predictor
            .iter()
            .map(|r| {
                format!(
                    "{},{},{},{},{:.4},{:.4}",
                    r.bench,
                    r.pattern,
                    r.base_cycles,
                    r.no_predictor_cycles,
                    r.slowdown,
                    r.opt_speedup_vs_nopred
                )
            })
            .collect(),
    )?;
    let mut lat = Vec::new();
    for r in &a.polb_latency {
        for (i, &cy) in crate::ablations::POLB_LATENCIES.iter().enumerate() {
            lat.push(format!("{},{cy},{:.4}", r.bench, r.speedups[i]));
        }
    }
    write(
        dir,
        "ablation_polb_latency.csv",
        "bench,polb_cycles,speedup",
        lat,
    )?;
    write(
        dir,
        "ablation_prefetch.csv",
        "bench,speedup_no_prefetch,speedup_with_prefetch",
        a.prefetch
            .iter()
            .map(|r| {
                format!(
                    "{},{:.4},{:.4}",
                    r.bench, r.speedup_no_prefetch, r.speedup_with_prefetch
                )
            })
            .collect(),
    )?;
    write(
        dir,
        "ablation_pot_occupancy.csv",
        "occupancy,mean_probes,max_probes",
        a.pot_occupancy
            .iter()
            .map(|r| format!("{:.2},{:.4},{}", r.occupancy, r.mean_probes, r.max_probes))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Scale;

    #[test]
    fn csvs_are_written_and_well_formed() {
        let dir = std::env::temp_dir().join(format!("poat-csv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let t2 = crate::experiments::table2(Scale::Quick);
        table2(&dir, &t2).unwrap();
        let content = std::fs::read_to_string(dir.join("table2.csv")).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), t2.len() + 1);
        let cols = lines[0].split(',').count();
        assert!(lines.iter().all(|l| l.split(',').count() == cols));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

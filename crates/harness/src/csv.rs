//! CSV emission for every artifact, so the figures can be plotted with
//! any external tool (`repro <artifact> --csv DIR`).

use std::io::Write;
use std::path::Path;

use crate::ablations::AblationResults;
use crate::experiments::{
    Fig10Row, Fig11Row, Fig12Row, MainResults, SpeedupRow, Table2Row, POLB_SIZES, POT_LATENCIES,
};

fn write(dir: &Path, name: &str, header: &str, rows: Vec<String>) -> std::io::Result<()> {
    let mut f = std::fs::File::create(dir.join(name))?;
    writeln!(f, "{header}")?;
    for r in rows {
        writeln!(f, "{r}")?;
    }
    Ok(())
}

/// Renders one text field per RFC 4180: values containing a comma, a
/// double quote, or a line break are wrapped in double quotes, with
/// internal quotes doubled. Anything else passes through unchanged, so
/// the common all-bare files stay byte-identical.
pub fn field(v: impl std::fmt::Display) -> String {
    let s = v.to_string();
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s
    }
}

/// Renders one numeric field with `prec` decimal places. Non-finite
/// values (NaN, ±inf — e.g. a speedup over a zero-cycle baseline) render
/// as the *empty* field: `NaN`/`inf` tokens break most CSV consumers,
/// and an empty cell is the established "absent" convention in these
/// files (see the optional Parallel column).
pub fn num(v: f64, prec: usize) -> String {
    if v.is_finite() {
        format!("{v:.prec$}")
    } else {
        String::new()
    }
}

/// Writes `table2.csv`.
pub fn table2(dir: &Path, rows: &[Table2Row]) -> std::io::Result<()> {
    write(
        dir,
        "table2.csv",
        "bench,insns_all,insns_each,predictor_miss_each",
        rows.iter()
            .map(|r| {
                format!(
                    "{},{},{},{}",
                    field(&r.bench),
                    num(r.insns_all, 2),
                    num(r.insns_each, 2),
                    num(r.miss_each, 4)
                )
            })
            .collect(),
    )
}

fn speedups(dir: &Path, name: &str, rows: &[SpeedupRow]) -> std::io::Result<()> {
    write(
        dir,
        name,
        "bench,pattern,pipelined,parallel,ideal",
        rows.iter()
            .map(|r| {
                format!(
                    "{},{},{},{},{}",
                    field(&r.bench),
                    field(&r.pattern),
                    num(r.pipelined, 4),
                    r.parallel.map(|p| num(p, 4)).unwrap_or_default(),
                    num(r.ideal, 4)
                )
            })
            .collect(),
    )
}

/// Writes `fig9a.csv`, `fig9b.csv`, `table8.csv`, and `instrs.csv`.
pub fn main_results(dir: &Path, m: &MainResults) -> std::io::Result<()> {
    speedups(dir, "fig9a.csv", &m.fig9a)?;
    speedups(dir, "fig9b.csv", &m.fig9b)?;
    write(
        dir,
        "table8.csv",
        "bench,par_all,par_random,par_each,pipe_each",
        m.table8
            .iter()
            .map(|r| {
                format!(
                    "{},{},{},{},{}",
                    field(&r.bench),
                    num(r.par_all, 4),
                    r.par_random.map(|p| num(p, 4)).unwrap_or_default(),
                    num(r.par_each, 4),
                    num(r.pipe_each, 4)
                )
            })
            .collect(),
    )?;
    write(
        dir,
        "instrs.csv",
        "bench,pattern,base_instructions,opt_instructions,reduction",
        m.instrs
            .iter()
            .map(|r| {
                format!(
                    "{},{},{},{},{}",
                    field(&r.bench),
                    field(&r.pattern),
                    r.base_instructions,
                    r.opt_instructions,
                    num(r.reduction, 4)
                )
            })
            .collect(),
    )
}

/// Writes `fig10.csv`.
pub fn fig10(dir: &Path, rows: &[Fig10Row]) -> std::io::Result<()> {
    write(
        dir,
        "fig10.csv",
        "bench,pattern,pipelined,parallel",
        rows.iter()
            .map(|r| {
                format!(
                    "{},{},{},{}",
                    field(&r.bench),
                    field(&r.pattern),
                    num(r.pipelined, 4),
                    num(r.parallel, 4)
                )
            })
            .collect(),
    )
}

/// Writes `fig11.csv` and `table9.csv` (long format: one row per point).
pub fn fig11(dir: &Path, rows: &[Fig11Row]) -> std::io::Result<()> {
    let mut speed = Vec::new();
    let mut miss = Vec::new();
    for r in rows {
        let bench = field(&r.bench);
        for (i, &size) in POLB_SIZES.iter().enumerate() {
            speed.push(format!(
                "{bench},Pipelined,{size},{}",
                num(r.pipelined[i], 4)
            ));
            speed.push(format!("{bench},Parallel,{size},{}", num(r.parallel[i], 4)));
            miss.push(format!(
                "{bench},Pipelined,{size},{}",
                num(r.pipe_miss[i], 4)
            ));
            miss.push(format!("{bench},Parallel,{size},{}", num(r.par_miss[i], 4)));
        }
    }
    write(dir, "fig11.csv", "bench,design,polb_entries,speedup", speed)?;
    write(
        dir,
        "table9.csv",
        "bench,design,polb_entries,miss_rate",
        miss,
    )
}

/// Writes `fig12.csv` (long format).
pub fn fig12(dir: &Path, rows: &[Fig12Row]) -> std::io::Result<()> {
    let mut out = Vec::new();
    for r in rows {
        for (i, lat) in POT_LATENCIES.iter().enumerate() {
            let lat = lat.map(|l| l.to_string()).unwrap_or_else(|| "ideal".into());
            out.push(format!(
                "{},{lat},{}",
                field(&r.bench),
                num(r.speedups[i], 4)
            ));
        }
    }
    write(dir, "fig12.csv", "bench,pot_walk_cycles,speedup", out)
}

/// Writes the four ablation CSVs.
pub fn ablations(dir: &Path, a: &AblationResults) -> std::io::Result<()> {
    write(
        dir,
        "ablation_predictor.csv",
        "bench,pattern,base_cycles,no_predictor_cycles,slowdown,opt_speedup_vs_nopred",
        a.predictor
            .iter()
            .map(|r| {
                format!(
                    "{},{},{},{},{},{}",
                    field(&r.bench),
                    field(&r.pattern),
                    r.base_cycles,
                    r.no_predictor_cycles,
                    num(r.slowdown, 4),
                    num(r.opt_speedup_vs_nopred, 4)
                )
            })
            .collect(),
    )?;
    let mut lat = Vec::new();
    for r in &a.polb_latency {
        for (i, &cy) in crate::ablations::POLB_LATENCIES.iter().enumerate() {
            lat.push(format!(
                "{},{cy},{}",
                field(&r.bench),
                num(r.speedups[i], 4)
            ));
        }
    }
    write(
        dir,
        "ablation_polb_latency.csv",
        "bench,polb_cycles,speedup",
        lat,
    )?;
    write(
        dir,
        "ablation_prefetch.csv",
        "bench,speedup_no_prefetch,speedup_with_prefetch",
        a.prefetch
            .iter()
            .map(|r| {
                format!(
                    "{},{},{}",
                    field(&r.bench),
                    num(r.speedup_no_prefetch, 4),
                    num(r.speedup_with_prefetch, 4)
                )
            })
            .collect(),
    )?;
    write(
        dir,
        "ablation_pot_occupancy.csv",
        "occupancy,mean_probes,max_probes",
        a.pot_occupancy
            .iter()
            .map(|r| {
                format!(
                    "{},{},{}",
                    num(r.occupancy, 2),
                    num(r.mean_probes, 4),
                    r.max_probes
                )
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::SpeedupRow;
    use crate::runner::Scale;

    /// Minimal RFC 4180 parser for one line (no embedded line breaks),
    /// used to round-trip what the emitters write.
    fn parse_line(line: &str) -> Vec<String> {
        let mut fields = Vec::new();
        let mut cur = String::new();
        let mut chars = line.chars().peekable();
        let mut quoted = false;
        while let Some(c) = chars.next() {
            match c {
                '"' if quoted => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cur.push('"');
                    } else {
                        quoted = false;
                    }
                }
                '"' if cur.is_empty() => quoted = true,
                ',' if !quoted => fields.push(std::mem::take(&mut cur)),
                c => cur.push(c),
            }
        }
        fields.push(cur);
        fields
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("poat-csv-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn csvs_are_written_and_well_formed() {
        let dir = tmpdir("basic");
        let t2 = crate::experiments::table2(Scale::Quick);
        table2(&dir, &t2).unwrap();
        let content = std::fs::read_to_string(dir.join("table2.csv")).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), t2.len() + 1);
        let cols = lines[0].split(',').count();
        assert!(lines.iter().all(|l| l.split(',').count() == cols));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn field_quotes_per_rfc4180() {
        assert_eq!(field("LL"), "LL");
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(field("two\nlines"), "\"two\nlines\"");
        // Round trip through the reference parser.
        for raw in ["plain", "a,b", "she said \"x,y\"", ""] {
            assert_eq!(parse_line(&field(raw)), vec![raw.to_string()], "{raw:?}");
        }
    }

    #[test]
    fn num_renders_non_finite_as_empty() {
        assert_eq!(num(1.25, 4), "1.2500");
        assert_eq!(num(0.0, 2), "0.00");
        assert_eq!(num(f64::NAN, 4), "");
        assert_eq!(num(f64::INFINITY, 4), "");
        assert_eq!(num(f64::NEG_INFINITY, 4), "");
    }

    #[test]
    fn special_bench_names_round_trip_with_stable_column_count() {
        // A bench name containing a comma and a quote, plus a NaN value:
        // pre-hardening these produced rows whose naive-split column
        // count disagreed with the header (or leaked `NaN` tokens).
        let dir = tmpdir("special");
        let rows = vec![SpeedupRow {
            bench: "LL, \"sorted\"".into(),
            pattern: "EACH".into(),
            pipelined: 1.5,
            parallel: Some(f64::NAN),
            ideal: 2.0,
        }];
        main_results(
            &dir,
            &crate::experiments::MainResults {
                fig9a: rows.clone(),
                fig9b: rows,
                table8: vec![],
                instrs: vec![],
            },
        )
        .unwrap();
        let content = std::fs::read_to_string(dir.join("fig9a.csv")).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        let header = parse_line(lines[0]);
        let row = parse_line(lines[1]);
        assert_eq!(row.len(), header.len(), "row: {:?}", lines[1]);
        assert_eq!(row[0], "LL, \"sorted\"");
        assert_eq!(row[3], "", "NaN speedup must render as an empty cell");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

// SPDX-License-Identifier: MIT OR Apache-2.0
//! Live worker-pool HUD: per-worker utilization, queue depth, and a
//! heartbeat watchdog over [`crate::runner::parallel_map`].
//!
//! The experiment matrix fans out over up to 24 workers; when a full-scale
//! run sits silent for minutes the only question that matters is "is it
//! still making progress, and which worker is wedged?". The HUD answers
//! both: a periodic single-line progress report (completed/total, queue
//! depth, busy workers, elapsed) plus a stall watchdog that flags any
//! worker whose last heartbeat is older than a threshold — emitting a
//! warning line, bumping the `pool.worker.stalls` counter, and forcing a
//! flight-recorder dump (`docs/TRACING.md`) so the wedged worker's recent
//! translation events survive for post-mortem.
//!
//! Rendering goes through an installable [`Sink`] rather than stderr:
//! library code stays silent by default and the `repro` binary decides
//! where HUD lines land (`--hud SECS` wires the sink to stderr). With no
//! sink and no interval the monitor only maintains its gauges —
//! `pool.queue.depth{pool=L}`, `pool.workers.active{pool=L}` (labeled by
//! pool, because the matrix pool and the nested sharded-replay pools
//! coexist), and the per-worker `pool.worker.tasks{worker=N}` /
//! `pool.worker.busy_nanos{worker=N}` series (docs/METRICS.md) — at a
//! cost of a few atomic stores per task, invisible next to a simulation.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use poat_telemetry::{events, labeled};

/// Destination for rendered HUD lines (installed by the binary; library
/// code never writes to stderr itself).
pub type Sink = Box<dyn Fn(&str) + Send + Sync>;

static SINK: Mutex<Option<Sink>> = Mutex::new(None);
/// Progress-report period in milliseconds; 0 disables the HUD thread.
static INTERVAL_MS: AtomicU64 = AtomicU64::new(0);
/// Heartbeat silence past this many milliseconds counts as a stall.
static STALL_MS: AtomicU64 = AtomicU64::new(30_000);

/// Installs the sink HUD lines are rendered through.
pub fn set_sink(sink: Sink) {
    *SINK.lock().unwrap_or_else(|e| e.into_inner()) = Some(sink);
}

/// Sets the progress-report interval; `None` disables the HUD thread
/// (the gauges keep updating either way).
pub fn set_interval(interval: Option<Duration>) {
    INTERVAL_MS.store(
        interval.map(|d| d.as_millis().max(1) as u64).unwrap_or(0),
        Ordering::Relaxed,
    );
}

/// The configured progress-report interval, if any.
pub fn interval() -> Option<Duration> {
    match INTERVAL_MS.load(Ordering::Relaxed) {
        0 => None,
        ms => Some(Duration::from_millis(ms)),
    }
}

/// Sets how long a busy worker may go without a heartbeat before the
/// watchdog flags it as stalled.
pub fn set_stall_threshold(threshold: Duration) {
    STALL_MS.store(threshold.as_millis().max(1) as u64, Ordering::Relaxed);
}

fn emit(line: &str) {
    if let Some(sink) = SINK.lock().unwrap_or_else(|e| e.into_inner()).as_ref() {
        sink(line);
    }
}

#[derive(Default)]
struct WorkerSlot {
    tasks: AtomicU64,
    busy_nanos: AtomicU64,
    busy: AtomicBool,
    /// Nanoseconds since pool start at the last heartbeat.
    heartbeat_nanos: AtomicU64,
    /// Set once the watchdog has flagged the current silence, so one
    /// stall produces one warning, not one per tick.
    stall_flagged: AtomicBool,
}

/// Shared instrumentation for one `parallel_map` pool: workers report
/// task boundaries, the watchdog thread reads progress and heartbeats.
pub struct PoolMonitor {
    label: String,
    /// `pool.workers.active{pool=<label>}` — the liveness gauges carry
    /// the pool label because pools nest (the experiment matrix pool
    /// dispatches runs whose sharded replays each open a `shard` pool);
    /// unlabeled gauges would clobber each other across levels.
    workers_gauge: String,
    /// `pool.queue.depth{pool=<label>}` (see `workers_gauge`).
    queue_gauge: String,
    started: Instant,
    total: u64,
    completed: AtomicU64,
    queued: AtomicU64,
    done: AtomicBool,
    workers: Vec<WorkerSlot>,
}

impl PoolMonitor {
    /// Creates a monitor for a pool of `workers` threads and `total`
    /// queued tasks, priming the `pool.*` gauges.
    pub fn new(label: &str, workers: usize, total: u64) -> Self {
        let l = [("pool", label)];
        let workers_gauge = labeled("pool.workers.active", &l);
        let queue_gauge = labeled("pool.queue.depth", &l);
        let registry = poat_telemetry::global();
        registry.gauge(&workers_gauge).set(workers as u64);
        registry.gauge(&queue_gauge).set(total);
        PoolMonitor {
            label: label.to_string(),
            workers_gauge,
            queue_gauge,
            started: Instant::now(),
            total,
            completed: AtomicU64::new(0),
            queued: AtomicU64::new(total),
            done: AtomicBool::new(false),
            workers: (0..workers).map(|_| WorkerSlot::default()).collect(),
        }
    }

    fn now_nanos(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    /// A worker dequeued a task; returns the start instant to pass to
    /// [`end`](Self::end).
    pub fn begin(&self, worker: usize) -> Instant {
        let w = &self.workers[worker];
        w.busy.store(true, Ordering::Relaxed);
        w.heartbeat_nanos.store(self.now_nanos(), Ordering::Relaxed);
        w.stall_flagged.store(false, Ordering::Relaxed);
        let left = self
            .queued
            .fetch_sub(1, Ordering::Relaxed)
            .saturating_sub(1);
        poat_telemetry::global().gauge(&self.queue_gauge).set(left);
        Instant::now()
    }

    /// A worker finished the task it [`begin`](Self::begin)-ed.
    pub fn end(&self, worker: usize, task_started: Instant) {
        let w = &self.workers[worker];
        w.busy_nanos
            .fetch_add(task_started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        w.tasks.fetch_add(1, Ordering::Relaxed);
        w.heartbeat_nanos.store(self.now_nanos(), Ordering::Relaxed);
        w.busy.store(false, Ordering::Relaxed);
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    /// All workers joined: stop the watchdog, zero the liveness gauges,
    /// and publish the per-worker utilization series.
    pub fn finish(&self) {
        self.done.store(true, Ordering::Relaxed);
        let registry = poat_telemetry::global();
        registry.gauge(&self.workers_gauge).set(0);
        registry.gauge(&self.queue_gauge).set(0);
        for (i, w) in self.workers.iter().enumerate() {
            let id = i.to_string();
            let l = [("worker", id.as_str())];
            registry
                .gauge(&labeled("pool.worker.tasks", &l))
                .set(w.tasks.load(Ordering::Relaxed));
            registry
                .gauge(&labeled("pool.worker.busy_nanos", &l))
                .set(w.busy_nanos.load(Ordering::Relaxed));
        }
    }

    /// One `[pool]` progress line: completion, queue depth, busy workers,
    /// aggregate utilization since pool start, elapsed wall-clock.
    pub fn render_line(&self) -> String {
        let elapsed = self.started.elapsed();
        let busy = self
            .workers
            .iter()
            .filter(|w| w.busy.load(Ordering::Relaxed))
            .count();
        let busy_nanos: u64 = self
            .workers
            .iter()
            .map(|w| w.busy_nanos.load(Ordering::Relaxed))
            .sum();
        let util = if elapsed.as_nanos() > 0 && !self.workers.is_empty() {
            100.0 * busy_nanos as f64 / (elapsed.as_nanos() as f64 * self.workers.len() as f64)
        } else {
            0.0
        };
        format!(
            "[pool {}] {}/{} tasks done, {} queued, {}/{} workers busy, {util:.0}% utilized, {:.1}s",
            self.label,
            self.completed.load(Ordering::Relaxed),
            self.total,
            self.queued.load(Ordering::Relaxed),
            busy,
            self.workers.len(),
            elapsed.as_secs_f64(),
        )
    }

    /// Checks every busy worker's heartbeat against the stall threshold;
    /// a newly silent worker gets one warning line, a
    /// `pool.worker.stalls` bump, and a flight-recorder dump.
    fn check_stalls(&self) {
        let threshold_nanos = STALL_MS.load(Ordering::Relaxed).saturating_mul(1_000_000);
        let now = self.now_nanos();
        for (i, w) in self.workers.iter().enumerate() {
            if !w.busy.load(Ordering::Relaxed) {
                continue;
            }
            let silent = now.saturating_sub(w.heartbeat_nanos.load(Ordering::Relaxed));
            if silent >= threshold_nanos && !w.stall_flagged.swap(true, Ordering::Relaxed) {
                poat_telemetry::global().counter("pool.worker.stalls").inc();
                if let Some(rec) = events::installed() {
                    rec.dump_flight_now();
                }
                emit(&format!(
                    "[pool {}] WARNING: worker {i} silent for {:.1}s (task still running); \
                     flight-recorder tail dumped",
                    self.label,
                    silent as f64 * 1e-9,
                ));
            }
        }
    }

    /// Body of the HUD thread: renders a progress line every configured
    /// interval and runs the stall check, until [`finish`](Self::finish).
    /// Sleeps in short slices so pool teardown is never blocked on a
    /// full interval.
    pub fn run_watchdog(&self) {
        let Some(interval) = interval() else { return };
        let mut last_render = Instant::now();
        while !self.done.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(25));
            self.check_stalls();
            if last_render.elapsed() >= interval {
                emit(&self.render_line());
                last_render = Instant::now();
            }
        }
        emit(&self.render_line());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// The monitor publishes through the global registry and sink; tests
    /// serialize so one test's gauges don't race another's asserts.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn monitor_tracks_progress_and_utilization() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let m = PoolMonitor::new("test", 2, 3);
        let t0 = m.begin(0);
        std::thread::sleep(Duration::from_millis(2));
        m.end(0, t0);
        let t1 = m.begin(1);
        m.end(1, t1);
        let line = m.render_line();
        assert!(line.contains("2/3 tasks done"), "got: {line}");
        assert!(line.contains("1 queued"), "got: {line}");
        let queue_gauge = labeled("pool.queue.depth", &[("pool", "test")]);
        assert_eq!(
            poat_telemetry::global().gauge(&queue_gauge).get(),
            1,
            "the gauge is labeled by pool and tracks the queue"
        );
        m.finish();
        assert_eq!(
            poat_telemetry::global().gauge(&queue_gauge).get(),
            0,
            "finish zeroes the queue gauge"
        );
    }

    #[test]
    fn stalled_worker_is_flagged_once() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let lines: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_lines = lines.clone();
        set_sink(Box::new(move |l: &str| {
            sink_lines.lock().unwrap().push(l.to_string());
        }));
        set_stall_threshold(Duration::from_millis(1));
        let before = poat_telemetry::global().counter("pool.worker.stalls").get();
        let m = PoolMonitor::new("stall", 1, 1);
        let _t = m.begin(0); // never ends: a wedged worker
        std::thread::sleep(Duration::from_millis(5));
        m.check_stalls();
        m.check_stalls(); // second tick must not double-report
        let after = poat_telemetry::global().counter("pool.worker.stalls").get();
        assert_eq!(after - before, 1, "one stall, one count");
        let warned = lines
            .lock()
            .unwrap()
            .iter()
            .filter(|l| l.contains("worker 0 silent"))
            .count();
        assert_eq!(warned, 1, "one stall, one warning line");
        set_stall_threshold(Duration::from_secs(30));
        *SINK.lock().unwrap() = None;
    }
}

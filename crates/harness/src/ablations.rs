//! Ablation experiments beyond the paper's figures — the design-choice
//! studies DESIGN.md calls out, plus the POT-coverage question the paper's
//! future-work section (§8) raises.
//!
//! * [`predictor`] — NVML's last-value predictor on/off in the BASE
//!   library: quantifies how much of BASE's competitiveness under ALL
//!   comes from that one software optimization.
//! * [`polb_latency`] — Pipelined-POLB access latency swept 1–5 cycles:
//!   how much headroom the AGEN-stage placement has before the Pipelined
//!   design loses its advantage.
//! * [`prefetch`] — next-line L1D prefetch on/off for both BASE and OPT:
//!   checks that the paper's conclusion does not hinge on the simulated
//!   machine lacking a prefetcher.
//! * [`pot_occupancy`] — mean hardware-walk probes as the POT fills
//!   (paper §8: "the size of the POT and its required coverage ... will
//!   need to be analyzed").

use serde::Serialize;

use poat_core::{PoolId, Pot, TranslationConfig, VirtAddr};
use poat_sim::SimConfig;
use poat_workloads::{ExpConfig, Micro, Pattern};

use crate::report::{fx, pct, TextTable};
use crate::runner::{
    default_workers, parallel_map, pipelined, run_micro, run_micro_custom, simulate, simulate_with,
    Core, Scale,
};

/// Predictor ablation: BASE with and without the last-value predictor.
#[derive(Clone, Debug, Serialize)]
pub struct PredictorRow {
    /// Benchmark abbreviation.
    pub bench: String,
    /// Pattern label.
    pub pattern: String,
    /// In-order cycles, BASE as shipped (predictor on).
    pub base_cycles: u64,
    /// In-order cycles, BASE with the predictor disabled.
    pub no_predictor_cycles: u64,
    /// Slowdown from losing the predictor.
    pub slowdown: f64,
    /// OPT/BASE speedup against the predictor-less baseline.
    pub opt_speedup_vs_nopred: f64,
}

/// Runs the predictor ablation on ALL and RANDOM.
pub fn predictor(scale: Scale) -> Vec<PredictorRow> {
    let mut work = Vec::new();
    for bench in Micro::ALL {
        for pattern in [Pattern::All, Pattern::Random] {
            work.push((bench, pattern));
        }
    }
    parallel_map(work, default_workers(), |(bench, pattern)| {
        let base = run_micro(bench, pattern, ExpConfig::Base, scale);
        let nopred = run_micro_custom(bench, pattern, ExpConfig::Base, scale, |c| {
            c.last_value_predictor = false;
        });
        let opt = run_micro(bench, pattern, ExpConfig::Opt, scale);
        let b = simulate(&base, Core::InOrder, pipelined()).cycles;
        let n = simulate(&nopred, Core::InOrder, pipelined()).cycles;
        let o = simulate(&opt, Core::InOrder, pipelined()).cycles;
        PredictorRow {
            bench: bench.abbrev().to_owned(),
            pattern: pattern.label().to_owned(),
            base_cycles: b,
            no_predictor_cycles: n,
            slowdown: n as f64 / b.max(1) as f64,
            opt_speedup_vs_nopred: n as f64 / o.max(1) as f64,
        }
    })
}

/// Renders the predictor ablation.
pub fn predictor_text(rows: &[PredictorRow]) -> String {
    let mut t = TextTable::new(
        "Ablation A1 — last-value predictor (BASE, in-order)",
        &["Bench", "Pattern", "no-pred slowdown", "OPT vs no-pred"],
    );
    for r in rows {
        t.row(vec![
            r.bench.clone(),
            r.pattern.clone(),
            fx(r.slowdown),
            fx(r.opt_speedup_vs_nopred),
        ]);
    }
    t.render()
}

/// POLB access-latency sweep for the Pipelined design.
#[derive(Clone, Debug, Serialize)]
pub struct PolbLatencyRow {
    /// Benchmark abbreviation.
    pub bench: String,
    /// OPT/BASE speedup at POLB access latency 1..=5 cycles.
    pub speedups: Vec<f64>,
}

/// Latencies swept by [`polb_latency`].
pub const POLB_LATENCIES: [u64; 5] = [1, 2, 3, 4, 5];

/// Runs the POLB access-latency sweep (RANDOM pattern, in-order).
pub fn polb_latency(scale: Scale) -> Vec<PolbLatencyRow> {
    parallel_map(Micro::ALL.to_vec(), default_workers(), |bench| {
        let base = run_micro(bench, Pattern::Random, ExpConfig::Base, scale);
        let opt = run_micro(bench, Pattern::Random, ExpConfig::Opt, scale);
        let b = simulate(&base, Core::InOrder, pipelined()).cycles;
        let speedups = POLB_LATENCIES
            .iter()
            .map(|&lat| {
                let cfg = TranslationConfig {
                    polb_access_cycles: lat,
                    ..pipelined()
                };
                b as f64 / simulate(&opt, Core::InOrder, cfg).cycles.max(1) as f64
            })
            .collect();
        PolbLatencyRow {
            bench: bench.abbrev().to_owned(),
            speedups,
        }
    })
}

/// Renders the POLB-latency sweep.
pub fn polb_latency_text(rows: &[PolbLatencyRow]) -> String {
    let mut t = TextTable::new(
        "Ablation A2 — POLB access latency (Pipelined, RANDOM, in-order)",
        &["Bench", "1cy", "2cy", "3cy", "4cy", "5cy"],
    );
    for r in rows {
        let mut cells = vec![r.bench.clone()];
        cells.extend(r.speedups.iter().map(|&x| fx(x)));
        t.row(cells);
    }
    t.render()
}

/// Prefetcher ablation row.
#[derive(Clone, Debug, Serialize)]
pub struct PrefetchRow {
    /// Benchmark abbreviation.
    pub bench: String,
    /// OPT/BASE speedup without a prefetcher (the paper's machine).
    pub speedup_no_prefetch: f64,
    /// OPT/BASE speedup with a next-line L1D prefetcher in both runs.
    pub speedup_with_prefetch: f64,
}

/// Runs the prefetcher ablation (RANDOM pattern, in-order).
pub fn prefetch(scale: Scale) -> Vec<PrefetchRow> {
    parallel_map(Micro::ALL.to_vec(), default_workers(), |bench| {
        let base = run_micro(bench, Pattern::Random, ExpConfig::Base, scale);
        let opt = run_micro(bench, Pattern::Random, ExpConfig::Opt, scale);
        let plain = SimConfig::with_translation(pipelined());
        let mut pf = plain;
        pf.mem.next_line_prefetch = true;
        let speedup = |cfg: SimConfig| {
            simulate_with(&base, Core::InOrder, cfg).cycles as f64
                / simulate_with(&opt, Core::InOrder, cfg).cycles.max(1) as f64
        };
        PrefetchRow {
            bench: bench.abbrev().to_owned(),
            speedup_no_prefetch: speedup(plain),
            speedup_with_prefetch: speedup(pf),
        }
    })
}

/// Renders the prefetcher ablation.
pub fn prefetch_text(rows: &[PrefetchRow]) -> String {
    let mut t = TextTable::new(
        "Ablation A3 — next-line L1D prefetcher (RANDOM, in-order)",
        &["Bench", "no prefetch", "with prefetch"],
    );
    for r in rows {
        t.row(vec![
            r.bench.clone(),
            fx(r.speedup_no_prefetch),
            fx(r.speedup_with_prefetch),
        ]);
    }
    t.render()
}

/// POT-occupancy study: mean hardware-walk probes as the table fills.
#[derive(Clone, Debug, Serialize)]
pub struct PotOccupancyRow {
    /// Fraction of the 16384-entry POT occupied.
    pub occupancy: f64,
    /// Mean linear probes per walk at that occupancy.
    pub mean_probes: f64,
    /// Worst-case probes observed.
    pub max_probes: u32,
}

/// Occupancies swept by [`pot_occupancy`].
pub const POT_OCCUPANCIES: [f64; 6] = [0.1, 0.25, 0.5, 0.75, 0.9, 0.95];

/// Measures POT walk cost vs occupancy (paper §8 future work). Pure
/// hardware-structure study: pools are inserted to the target occupancy
/// and every pool is then walked once.
pub fn pot_occupancy() -> Vec<PotOccupancyRow> {
    let entries = 16384usize;
    POT_OCCUPANCIES
        .iter()
        .map(|&occ| {
            let mut pot = Pot::new(entries);
            let n = (entries as f64 * occ) as u32;
            for i in 1..=n {
                pot.insert(
                    PoolId::new(i).expect("non-zero"),
                    VirtAddr::new((i as u64) << 24),
                )
                .expect("under capacity");
            }
            let mut max_probes = 0;
            for i in 1..=n {
                let r = pot.walk(PoolId::new(i).expect("non-zero"));
                assert!(r.base.is_some());
                max_probes = max_probes.max(r.probes);
            }
            PotOccupancyRow {
                occupancy: occ,
                mean_probes: pot.mean_probes(),
                max_probes,
            }
        })
        .collect()
}

/// Renders the POT-occupancy study.
pub fn pot_occupancy_text(rows: &[PotOccupancyRow]) -> String {
    let mut t = TextTable::new(
        "Ablation A4 — POT walk cost vs occupancy (16384 entries, §8)",
        &["Occupancy", "Mean probes", "Max probes"],
    );
    for r in rows {
        t.row(vec![
            pct(r.occupancy),
            format!("{:.2}", r.mean_probes),
            r.max_probes.to_string(),
        ]);
    }
    t.render()
}

/// Everything the ablation suite produces.
#[derive(Clone, Debug, Serialize)]
pub struct AblationResults {
    /// A1: last-value predictor on/off.
    pub predictor: Vec<PredictorRow>,
    /// A2: POLB access-latency sweep.
    pub polb_latency: Vec<PolbLatencyRow>,
    /// A3: next-line prefetcher on/off.
    pub prefetch: Vec<PrefetchRow>,
    /// A4: POT occupancy.
    pub pot_occupancy: Vec<PotOccupancyRow>,
}

/// Runs all four ablations.
pub fn all(scale: Scale) -> AblationResults {
    AblationResults {
        predictor: predictor(scale),
        polb_latency: polb_latency(scale),
        prefetch: prefetch(scale),
        pot_occupancy: pot_occupancy(),
    }
}

/// Renders the whole suite.
pub fn all_text(r: &AblationResults) -> String {
    format!(
        "{}\n{}\n{}\n{}",
        predictor_text(&r.predictor),
        polb_latency_text(&r.polb_latency),
        prefetch_text(&r.prefetch),
        pot_occupancy_text(&r.pot_occupancy)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_matters_most_under_all() {
        let rows = predictor(Scale::Quick);
        let slow = |b: &str, p: &str| {
            rows.iter()
                .find(|r| r.bench == b && r.pattern == p)
                .unwrap()
                .slowdown
        };
        for b in ["LL", "BST", "RBT"] {
            assert!(
                slow(b, "ALL") > slow(b, "RANDOM") - 0.05,
                "{b}: predictor saves ALL more than RANDOM"
            );
            assert!(slow(b, "ALL") > 1.05, "{b}: losing the predictor hurts ALL");
        }
    }

    #[test]
    fn polb_latency_monotonically_erodes_speedup() {
        for r in polb_latency(Scale::Quick) {
            for w in r.speedups.windows(2) {
                assert!(w[1] <= w[0] + 0.01, "{}: {:?}", r.bench, r.speedups);
            }
        }
    }

    #[test]
    fn pot_occupancy_probe_cost_grows() {
        let rows = pot_occupancy();
        assert!(rows[0].mean_probes >= 1.0);
        assert!(rows.last().unwrap().mean_probes > rows[0].mean_probes);
        assert!(rows.last().unwrap().max_probes >= rows[0].max_probes);
    }

    #[test]
    fn prefetch_rows_have_positive_speedups() {
        for r in prefetch(Scale::Quick) {
            assert!(r.speedup_no_prefetch > 1.0, "{}", r.bench);
            assert!(r.speedup_with_prefetch > 1.0, "{}", r.bench);
        }
    }
}

// SPDX-License-Identifier: MIT OR Apache-2.0
//! `repro jobs` and `repro catalog query` — the observer side of serve
//! mode.
//!
//! Both commands open the catalog read-only
//! ([`poat_catalog::open_file_read_only`]): a serve process may be
//! appending concurrently, and an observer must never repair what could
//! be the writer's in-flight frame. A missing catalog reads as empty,
//! so the commands work before the first serve session too.

use std::path::Path;

use poat_catalog::{Catalog, JobRow, JobStatus, LedgerError, QueryFilter, ReadOnlyMedium};

use crate::report::TextTable;
use crate::serve;

fn open_observer(catalog: &Path) -> Result<Catalog<ReadOnlyMedium>, LedgerError> {
    poat_catalog::open_file_read_only(catalog)
}

fn row_cells(j: &JobRow, value: String) -> Vec<String> {
    vec![
        format!("{:06}", j.job_id),
        j.spec.workload.clone(),
        j.spec.design.clone(),
        j.spec.scale.clone(),
        j.status.label().to_string(),
        if j.finished_unix_secs > 0 {
            format!("{:.2}", j.elapsed_micros as f64 / 1e6)
        } else {
            "-".to_string()
        },
        value,
    ]
}

fn detail_cell(j: &JobRow, metric: Option<&str>) -> String {
    match metric {
        Some(name) => j
            .metrics
            .get(name)
            .map(|v| v.to_string())
            .unwrap_or_else(|| "-".to_string()),
        None => match j.status {
            JobStatus::Failed => j.error.clone(),
            JobStatus::Completed => format!("{} metrics", j.metrics.len()),
            JobStatus::Submitted => String::new(),
        },
    }
}

/// Renders `repro jobs`: the spool depth, every catalog job, and a
/// greppable one-line summary.
///
/// # Errors
///
/// Spool directory-read failures or catalog scan errors.
pub fn jobs_text(spool: &Path, catalog: &Path) -> Result<String, String> {
    let pending = serve::pending_specs(spool)
        .map_err(|e| format!("reading spool {}: {e}", spool.display()))?
        .len();
    let cat = open_observer(catalog)
        .map_err(|e| format!("opening catalog {}: {e}", catalog.display()))?;
    let mut t = TextTable::new(
        &format!("Jobs ({})", catalog.display()),
        &[
            "Job",
            "Workload",
            "Design",
            "Scale",
            "Status",
            "Elapsed s",
            "Detail",
        ],
    );
    let (mut running, mut completed, mut failed) = (0usize, 0usize, 0usize);
    for j in cat.jobs() {
        match j.status {
            JobStatus::Submitted => running += 1,
            JobStatus::Completed => completed += 1,
            JobStatus::Failed => failed += 1,
        }
        t.row(row_cells(j, detail_cell(j, None)));
    }
    Ok(format!(
        "{}\n{pending} pending, {running} running, {completed} completed, {failed} failed",
        t.render()
    ))
}

/// Renders `repro catalog query`: catalog jobs matching `filter`, with
/// `metric`'s value per job when one was named, and a greppable match
/// count.
///
/// # Errors
///
/// Catalog open/scan errors.
pub fn query_text(
    catalog: &Path,
    filter: &QueryFilter,
    metric: Option<&str>,
) -> Result<String, String> {
    let cat = open_observer(catalog)
        .map_err(|e| format!("opening catalog {}: {e}", catalog.display()))?;
    let rows = cat.query(filter);
    let detail_header = metric.unwrap_or("Detail");
    let mut t = TextTable::new(
        &format!("Catalog query ({})", catalog.display()),
        &[
            "Job",
            "Workload",
            "Design",
            "Scale",
            "Status",
            "Elapsed s",
            detail_header,
        ],
    );
    for j in &rows {
        t.row(row_cells(j, detail_cell(j, metric)));
    }
    Ok(format!("{}\n{} job(s) matched", t.render(), rows.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use poat_catalog::{CatalogRecord, JobSpec};
    use std::collections::BTreeMap;

    fn spec(workload: &str, design: &str) -> JobSpec {
        JobSpec {
            workload: workload.into(),
            design: design.into(),
            scale: "quick".into(),
        }
    }

    fn seeded_catalog(tag: &str) -> (std::path::PathBuf, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("poat_jobs_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let catalog = dir.join("catalog.poatcat");
        let mut cat = poat_catalog::open_file(&catalog).unwrap();
        cat.append_event(CatalogRecord::submitted(
            1,
            spec("LL:ALL", "pipelined"),
            100,
        ))
        .unwrap();
        let mut metrics = BTreeMap::new();
        metrics.insert("sim.result.cycles".to_string(), 4242);
        cat.append_event(CatalogRecord::completed(
            1,
            spec("LL:ALL", "pipelined"),
            101,
            1_500_000,
            metrics,
        ))
        .unwrap();
        cat.append_event(CatalogRecord::submitted(
            2,
            spec("BST:RANDOM", "ideal"),
            102,
        ))
        .unwrap();
        (dir, catalog)
    }

    #[test]
    fn jobs_text_counts_every_state() {
        let (dir, catalog) = seeded_catalog("counts");
        let text = jobs_text(&dir.join("spool"), &catalog).unwrap();
        assert!(text.contains("0 pending, 1 running, 1 completed, 0 failed"));
        assert!(text.contains("000001"));
        assert!(text.contains("1 metrics"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn query_text_filters_and_projects_metrics() {
        let (dir, catalog) = seeded_catalog("query");
        let all = query_text(&catalog, &QueryFilter::default(), None).unwrap();
        assert!(all.contains("2 job(s) matched"));
        let cycles = query_text(
            &catalog,
            &QueryFilter {
                workload: Some("LL:ALL".into()),
                ..QueryFilter::default()
            },
            Some("sim.result.cycles"),
        )
        .unwrap();
        assert!(cycles.contains("1 job(s) matched"));
        assert!(cycles.contains("4242"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_catalog_and_spool_read_as_empty() {
        let dir = std::env::temp_dir().join(format!("poat_jobs_none_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let text = jobs_text(&dir.join("spool"), &dir.join("catalog.poatcat")).unwrap();
        assert!(text.contains("0 pending, 0 running, 0 completed, 0 failed"));
    }
}

// SPDX-License-Identifier: MIT OR Apache-2.0
//! `repro serve` — the always-on run service: a filesystem job spool,
//! an async job queue feeding the worker pool, and the durable run
//! catalog recording every job's lifecycle.
//!
//! ## Job lifecycle
//!
//! 1. **Submit** (`repro submit WORKLOAD DESIGN SCALE`): the spec is
//!    written to `<spool>/pending/` via temp-file + rename, so the
//!    server only ever sees complete spec files — submission is atomic
//!    and works from any process, no socket required.
//! 2. **Claim**: the serve loop renames pending specs into
//!    `<spool>/running/` (rename doubles as the claim lock), assigns
//!    each a job id, and appends a `Submitted` event to the catalog.
//! 3. **Execute**: claimed jobs fan out over the existing worker pool
//!    ([`crate::runner::parallel_map_labeled`], so the HUD and `pool.*`
//!    metrics cover serve traffic too); each job runs the same
//!    deterministic `run_micro` + `simulate` path as batch `repro` —
//!    full-scale traces take the PR-9 sharded replay automatically —
//!    and therefore produces byte-identical results to a batch run of
//!    the same cell.
//! 4. **Record**: a terminal `Completed` (with the run's `sim.result.*`
//!    metrics) or `Failed` (with the error) event is appended durably,
//!    then the spec file is removed. Crash-recovery follows from the
//!    ordering: a spec still in `running/` at boot means no terminal
//!    event is durable, so it is simply moved back to `pending/` and
//!    re-executed (runs are deterministic, so the retry converges).
//!
//! Telemetry: `queue.*` counters/gauges (docs/METRICS.md).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use poat_catalog::{Catalog, CatalogRecord, JobSpec};
use poat_ledger::FileMedium;
use poat_telemetry::global;
use poat_workloads::ExpConfig;

use crate::notify;
use crate::runner::{self, Core, Scale};

/// Design labels a job spec may name, in CLI spelling.
pub const DESIGNS: [&str; 3] = ["pipelined", "parallel", "ideal"];

/// How the serve loop runs.
pub struct ServeOptions {
    /// Spool directory (holds `pending/` and `running/`).
    pub spool: PathBuf,
    /// Catalog file the lifecycle events are appended to.
    pub catalog: PathBuf,
    /// Idle sleep between spool polls, in milliseconds.
    pub poll_ms: u64,
    /// Exit once the spool is empty (after processing what is there).
    pub drain: bool,
    /// Exit after this many seconds without new work.
    pub idle_exit_secs: Option<u64>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            spool: PathBuf::from(".poat/spool"),
            catalog: PathBuf::from(".poat/catalog.poatcat"),
            poll_ms: 200,
            drain: false,
            idle_exit_secs: None,
        }
    }
}

/// What one serve session did (printed on exit and asserted by tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Jobs claimed from the spool.
    pub claimed: u64,
    /// Jobs that completed and recorded metrics.
    pub completed: u64,
    /// Jobs that recorded a failure.
    pub failed: u64,
}

/// Validates a submission's fields against the grammar batch `repro`
/// accepts, returning the normalized spec.
///
/// # Errors
///
/// A human-readable description of the first invalid field.
pub fn validate_spec(workload: &str, design: &str, scale: &str) -> Result<JobSpec, String> {
    let (bench, pattern) = crate::crash_sweep::parse_workload(workload).ok_or_else(|| {
        format!("unknown workload `{workload}` (expected BENCH:PATTERN, e.g. LL:ALL)")
    })?;
    if !DESIGNS.contains(&design) {
        return Err(format!(
            "unknown design `{design}` (expected one of {})",
            DESIGNS.join(", ")
        ));
    }
    if scale != "quick" && scale != "full" {
        return Err(format!("unknown scale `{scale}` (expected quick or full)"));
    }
    Ok(JobSpec {
        workload: format!("{}:{}", bench.abbrev(), pattern.label()),
        design: design.to_string(),
        scale: scale.to_string(),
    })
}

/// The `pending/` directory of a spool.
pub fn pending_dir(spool: &Path) -> PathBuf {
    spool.join("pending")
}

/// The `running/` directory of a spool.
pub fn running_dir(spool: &Path) -> PathBuf {
    spool.join("running")
}

/// Wall-clock seconds since the Unix epoch (for catalog events).
pub fn unix_now_secs() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

static SUBMIT_NONCE: AtomicU64 = AtomicU64::new(0);

/// Atomically drops `spec` into the spool's pending directory (temp
/// file + rename, so the server never reads a half-written spec) and
/// returns the spec-file path.
///
/// # Errors
///
/// Directory-creation or file I/O failures.
pub fn submit(spool: &Path, spec: &JobSpec) -> std::io::Result<PathBuf> {
    let pending = pending_dir(spool);
    std::fs::create_dir_all(&pending)?;
    let nonce = SUBMIT_NONCE.fetch_add(1, Ordering::Relaxed);
    let name = format!(
        "job-{:011}-{:08}-{nonce:04}.spec",
        unix_now_secs(),
        std::process::id()
    );
    let tmp = pending.join(format!("{name}.tmp"));
    let contents = format!(
        "workload={}\ndesign={}\nscale={}\n",
        spec.workload, spec.design, spec.scale
    );
    std::fs::write(&tmp, contents)?;
    let dest = pending.join(&name);
    std::fs::rename(&tmp, &dest).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })?;
    Ok(dest)
}

/// Parses a spool spec file (`key=value` lines; see [`submit`]).
///
/// # Errors
///
/// I/O failures, unknown keys, or missing fields — all described for
/// the catalog's `Failed` event.
pub fn read_spec(path: &Path) -> Result<JobSpec, String> {
    let contents =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let mut spec = JobSpec::default();
    for line in contents.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("malformed spec line `{line}`"));
        };
        match key {
            "workload" => spec.workload = value.to_string(),
            "design" => spec.design = value.to_string(),
            "scale" => spec.scale = value.to_string(),
            other => return Err(format!("unknown spec key `{other}`")),
        }
    }
    validate_spec(&spec.workload, &spec.design, &spec.scale)
}

/// Spec files waiting in `pending/`, sorted by name (submission order —
/// names embed the submission timestamp).
///
/// # Errors
///
/// Directory-read failures (a missing directory reads as empty).
pub fn pending_specs(spool: &Path) -> std::io::Result<Vec<PathBuf>> {
    list_specs(&pending_dir(spool))
}

/// Spec files claimed into `running/`, sorted by name.
///
/// # Errors
///
/// Directory-read failures (a missing directory reads as empty).
pub fn running_specs(spool: &Path) -> std::io::Result<Vec<PathBuf>> {
    list_specs(&running_dir(spool))
}

fn list_specs(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) == Some("spec") {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

/// Runs one job spec through the same deterministic path batch `repro`
/// uses — `run_micro` at the spec's scale, then `simulate` on the
/// in-order core with the spec's translation design (full-scale traces
/// shard across the worker pool automatically) — and returns the run's
/// `sim.result.*` metrics.
///
/// # Errors
///
/// Invalid spec fields or a panicking simulation, described for the
/// catalog's `Failed` event.
pub fn execute_spec(spec: &JobSpec) -> Result<BTreeMap<String, u64>, String> {
    let spec = validate_spec(&spec.workload, &spec.design, &spec.scale)?;
    let (bench, pattern) =
        crate::crash_sweep::parse_workload(&spec.workload).expect("validated above");
    let scale = if spec.scale == "full" {
        Scale::Full
    } else {
        Scale::Quick
    };
    let translation = match spec.design.as_str() {
        "parallel" => runner::parallel(),
        "ideal" => runner::ideal(),
        _ => runner::pipelined(),
    };
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let run = runner::run_micro(bench, pattern, ExpConfig::Opt, scale);
        runner::simulate(&run, Core::InOrder, translation)
    }))
    .map_err(|p| {
        let msg = p
            .downcast_ref::<String>()
            .map(|s| s.as_str())
            .or_else(|| p.downcast_ref::<&str>().copied())
            .unwrap_or("run panicked");
        format!("run panicked: {msg}")
    })?;
    Ok(result_metrics(&result))
}

/// Projects a [`poat_sim::SimResult`] into the catalog's metric map,
/// using the same `sim.result.*` names `SimResult::publish` registers.
pub fn result_metrics(r: &poat_sim::SimResult) -> BTreeMap<String, u64> {
    BTreeMap::from([
        ("sim.result.cycles".to_string(), r.cycles),
        ("sim.result.instructions".to_string(), r.instructions),
        ("sim.result.polb_hits".to_string(), r.translation.polb.hits),
        (
            "sim.result.polb_misses".to_string(),
            r.translation.polb.misses,
        ),
        ("sim.result.pot_walks".to_string(), r.translation.pot_walks),
        (
            "sim.result.exceptions".to_string(),
            r.translation.exceptions,
        ),
        (
            "sim.result.translation_cycles".to_string(),
            r.translation.translation_cycles,
        ),
        ("sim.result.l1d_hits".to_string(), r.cache.l1d.hits),
        ("sim.result.l1d_misses".to_string(), r.cache.l1d.misses),
        ("sim.result.l2_hits".to_string(), r.cache.l2.hits),
        ("sim.result.l2_misses".to_string(), r.cache.l2.misses),
        ("sim.result.l3_hits".to_string(), r.cache.l3.hits),
        ("sim.result.l3_misses".to_string(), r.cache.l3.misses),
        ("sim.result.tlb_hits".to_string(), r.tlb.hits),
        ("sim.result.tlb_misses".to_string(), r.tlb.misses),
        ("sim.result.store_forwards".to_string(), r.store_forwards),
    ])
}

/// One claimed unit of work: the spec file (now in `running/`) and its
/// parse result.
struct ClaimedJob {
    path: PathBuf,
    parsed: Result<JobSpec, String>,
}

/// Claims every pending spec by renaming it into `running/`.
fn claim_batch(spool: &Path) -> std::io::Result<Vec<ClaimedJob>> {
    let running = running_dir(spool);
    std::fs::create_dir_all(&running)?;
    let mut batch = Vec::new();
    for path in pending_specs(spool)? {
        let dest = running.join(path.file_name().expect("spec files have names"));
        match std::fs::rename(&path, &dest) {
            Ok(()) => batch.push(ClaimedJob {
                parsed: read_spec(&dest),
                path: dest,
            }),
            // Lost a claim race (or the submitter removed it) — skip.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(batch)
}

/// Moves orphaned `running/` specs (a previous serve crashed mid-run)
/// back to `pending/`; their terminal events never became durable, so
/// re-execution is the correct — and, runs being deterministic,
/// convergent — recovery.
fn recover_orphans(spool: &Path) -> std::io::Result<u64> {
    let pending = pending_dir(spool);
    std::fs::create_dir_all(&pending)?;
    let mut recovered = 0;
    for path in running_specs(spool)? {
        let dest = pending.join(path.file_name().expect("spec files have names"));
        std::fs::rename(&path, &dest)?;
        recovered += 1;
    }
    Ok(recovered)
}

/// The serve loop: claim, record, execute, record, repeat — until the
/// configured exit condition (drain / idle timeout) fires.
///
/// # Errors
///
/// Catalog open/append failures and spool I/O failures. Job *failures*
/// are not errors — they are recorded as `Failed` events and counted in
/// the summary.
pub fn serve(opts: &ServeOptions) -> Result<ServeSummary, String> {
    let mut cat: Catalog<FileMedium> = poat_catalog::open_file(&opts.catalog)
        .map_err(|e| format!("opening catalog {}: {e}", opts.catalog.display()))?;
    let scan = cat.scan_report();
    if scan.torn_tail_bytes > 0 {
        notify::emit(&format!(
            "serve: catalog recovery truncated a torn tail of {} bytes ({})",
            scan.torn_tail_bytes,
            scan.torn_reason.as_deref().unwrap_or("unknown")
        ));
    }
    let orphans = recover_orphans(&opts.spool).map_err(|e| format!("recovering spool: {e}"))?;
    if orphans > 0 {
        notify::emit(&format!(
            "serve: re-queued {orphans} orphaned running job(s) from a previous session"
        ));
    }
    notify::emit(&format!(
        "serve: watching {} ({} jobs in catalog {})",
        opts.spool.display(),
        cat.jobs().count(),
        opts.catalog.display()
    ));

    let registry = global();
    let mut summary = ServeSummary::default();
    let mut last_work = Instant::now();
    loop {
        let batch = claim_batch(&opts.spool).map_err(|e| format!("claiming jobs: {e}"))?;
        registry.gauge("queue.depth").set(
            pending_specs(&opts.spool)
                .map(|v| v.len() as u64)
                .unwrap_or(0),
        );
        if batch.is_empty() {
            if opts.drain {
                break;
            }
            if let Some(secs) = opts.idle_exit_secs {
                if last_work.elapsed() >= Duration::from_secs(secs) {
                    notify::emit(&format!("serve: idle for {secs}s, exiting"));
                    break;
                }
            }
            registry.counter("queue.polls.idle").inc();
            std::thread::sleep(Duration::from_millis(opts.poll_ms));
            continue;
        }
        last_work = Instant::now();
        summary.claimed += batch.len() as u64;
        registry
            .counter("queue.jobs.claimed")
            .add(batch.len() as u64);

        // Record every claim durably before executing anything: a crash
        // from here on leaves `Submitted` events whose specs sit in
        // `running/` and will be re-queued on the next boot.
        let mut work = Vec::new();
        for job in batch {
            let job_id = cat.next_job_id();
            match job.parsed {
                Ok(spec) => {
                    cat.append_event(CatalogRecord::submitted(
                        job_id,
                        spec.clone(),
                        unix_now_secs(),
                    ))
                    .map_err(|e| format!("recording submission: {e}"))?;
                    notify::emit(&format!("serve: job {job_id} claimed ({})", spec.display()));
                    work.push((job_id, spec, job.path));
                }
                Err(reason) => {
                    // An unparseable spec still gets a full, durable
                    // lifecycle so `repro jobs` can show what happened.
                    let spec = JobSpec::default();
                    cat.append_event(CatalogRecord::submitted(
                        job_id,
                        spec.clone(),
                        unix_now_secs(),
                    ))
                    .map_err(|e| format!("recording submission: {e}"))?;
                    cat.append_event(CatalogRecord::failed(
                        job_id,
                        spec,
                        unix_now_secs(),
                        reason.clone(),
                    ))
                    .map_err(|e| format!("recording failure: {e}"))?;
                    notify::emit(&format!("serve: job {job_id} rejected: {reason}"));
                    summary.failed += 1;
                    registry.counter("queue.jobs.failed").inc();
                    let _ = std::fs::remove_file(&job.path);
                }
            }
        }

        // Execute the batch on the worker pool (HUD + pool.* metrics
        // observe it under the `serve` label).
        let specs: Vec<(u64, JobSpec)> = work
            .iter()
            .map(|(id, spec, _)| (*id, spec.clone()))
            .collect();
        let results = runner::parallel_map_labeled(
            "serve",
            specs,
            runner::default_workers(),
            |(job_id, spec)| {
                let t0 = Instant::now();
                let outcome = execute_spec(&spec);
                (job_id, spec, outcome, t0.elapsed().as_micros() as u64)
            },
        );

        for ((job_id, spec, outcome, elapsed_micros), (_, _, path)) in
            results.into_iter().zip(work.iter())
        {
            match outcome {
                Ok(metrics) => {
                    cat.append_event(CatalogRecord::completed(
                        job_id,
                        spec.clone(),
                        unix_now_secs(),
                        elapsed_micros,
                        metrics,
                    ))
                    .map_err(|e| format!("recording completion: {e}"))?;
                    notify::emit(&format!(
                        "serve: job {job_id} completed in {:.2}s ({})",
                        elapsed_micros as f64 / 1e6,
                        spec.display()
                    ));
                    summary.completed += 1;
                    registry.counter("queue.jobs.completed").inc();
                }
                Err(reason) => {
                    cat.append_event(CatalogRecord::failed(
                        job_id,
                        spec.clone(),
                        unix_now_secs(),
                        reason.clone(),
                    ))
                    .map_err(|e| format!("recording failure: {e}"))?;
                    notify::emit(&format!("serve: job {job_id} failed: {reason}"));
                    summary.failed += 1;
                    registry.counter("queue.jobs.failed").inc();
                }
            }
            // The terminal event is durable; only now may the spec file
            // disappear (the reverse order could lose the job entirely).
            let _ = std::fs::remove_file(path);
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_spool(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("poat_spool_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn validate_normalizes_case_and_rejects_garbage() {
        let spec = validate_spec("ll:all", "pipelined", "quick").unwrap();
        assert_eq!(spec.workload, "LL:ALL");
        assert!(validate_spec("LL", "pipelined", "quick").is_err());
        assert!(validate_spec("LL:ALL", "warp", "quick").is_err());
        assert!(validate_spec("LL:ALL", "pipelined", "medium").is_err());
    }

    #[test]
    fn submit_then_read_roundtrips_and_orders() {
        let spool = temp_spool("roundtrip");
        let a = submit(
            &spool,
            &validate_spec("LL:ALL", "pipelined", "quick").unwrap(),
        )
        .unwrap();
        let b = submit(
            &spool,
            &validate_spec("BST:RANDOM", "ideal", "quick").unwrap(),
        )
        .unwrap();
        let pending = pending_specs(&spool).unwrap();
        assert_eq!(pending, vec![a.clone(), b.clone()]);
        assert_eq!(read_spec(&a).unwrap().workload, "LL:ALL");
        assert_eq!(read_spec(&b).unwrap().design, "ideal");
        // No temp files linger.
        let stray = std::fs::read_dir(pending_dir(&spool))
            .unwrap()
            .filter_map(|e| e.ok())
            .any(|e| e.file_name().to_string_lossy().ends_with(".tmp"));
        assert!(!stray);
        std::fs::remove_dir_all(&spool).unwrap();
    }

    #[test]
    fn malformed_specs_read_as_errors() {
        let spool = temp_spool("malformed");
        let pending = pending_dir(&spool);
        std::fs::create_dir_all(&pending).unwrap();
        let bad = pending.join("job-0-bad.spec");
        std::fs::write(&bad, "workload=LL:ALL\nflavor=mint\n").unwrap();
        assert!(read_spec(&bad).unwrap_err().contains("unknown spec key"));
        std::fs::write(&bad, "workload LL:ALL\n").unwrap();
        assert!(read_spec(&bad).unwrap_err().contains("malformed"));
        std::fs::remove_dir_all(&spool).unwrap();
    }

    #[test]
    fn orphan_recovery_requeues_running_specs() {
        let spool = temp_spool("orphans");
        let spec = validate_spec("LL:ALL", "pipelined", "quick").unwrap();
        let path = submit(&spool, &spec).unwrap();
        // Simulate a crash mid-run: the spec was claimed but never
        // finished.
        let running = running_dir(&spool);
        std::fs::create_dir_all(&running).unwrap();
        let claimed = running.join(path.file_name().unwrap());
        std::fs::rename(&path, &claimed).unwrap();
        assert!(pending_specs(&spool).unwrap().is_empty());
        assert_eq!(recover_orphans(&spool).unwrap(), 1);
        assert_eq!(pending_specs(&spool).unwrap().len(), 1);
        assert!(running_specs(&spool).unwrap().is_empty());
        std::fs::remove_dir_all(&spool).unwrap();
    }

    #[test]
    fn serve_drains_submitted_jobs_into_the_catalog() {
        let spool = temp_spool("drain");
        let catalog = spool.join("catalog.poatcat");
        submit(
            &spool,
            &validate_spec("LL:ALL", "pipelined", "quick").unwrap(),
        )
        .unwrap();
        submit(&spool, &validate_spec("LL:ALL", "ideal", "quick").unwrap()).unwrap();
        // And one hand-written junk spec that must fail, not wedge.
        let junk = pending_dir(&spool).join("job-9-junk.spec");
        std::fs::write(
            &junk,
            "workload=NOPE:NEVER\ndesign=pipelined\nscale=quick\n",
        )
        .unwrap();
        let summary = serve(&ServeOptions {
            spool: spool.clone(),
            catalog: catalog.clone(),
            drain: true,
            ..ServeOptions::default()
        })
        .unwrap();
        assert_eq!(summary.claimed, 3);
        assert_eq!(summary.completed, 2);
        assert_eq!(summary.failed, 1);
        assert!(pending_specs(&spool).unwrap().is_empty());
        assert!(running_specs(&spool).unwrap().is_empty());
        let cat = poat_catalog::open_file_read_only(&catalog).unwrap();
        let done: Vec<_> = cat
            .jobs()
            .filter(|j| j.status == poat_catalog::JobStatus::Completed)
            .collect();
        assert_eq!(done.len(), 2);
        for j in done {
            assert!(j.metrics.contains_key("sim.result.cycles"));
            assert!(j.elapsed_micros > 0);
        }
        std::fs::remove_dir_all(&spool).unwrap();
    }
}

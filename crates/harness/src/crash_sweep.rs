//! Deterministic crash-point sweep campaigns (`repro crash-sweep`).
//!
//! The pmem layer's [`poat_pmem::faultpoint`] engine can crash a
//! workload at any persist boundary (`clwb` or fence), recover, and
//! score the post-recovery state against the recovery invariants. This
//! module turns that into a campaign: it enumerates every crash point a
//! paper workload crosses, fans the `point × inject-mode × seed` matrix
//! out over the harness worker pool, and reports one row per workload.
//! A sweep that reports zero violations has shown that *every* persist
//! boundary of that workload is crash-consistent under both clean and
//! torn cache-line semantics.
//!
//! `--replay <point>:<seed>` re-executes a single cell of the matrix
//! deterministically (same workload build, same device crash seed), so
//! a violating point found by a sweep can be brought back bit-for-bit
//! under `--trace` for diagnosis. See the crash-sweep section of
//! `EXPERIMENTS.md` for the crash-point taxonomy and workflow.

use poat_pmem::faultpoint::{self, CrashPoint, PointOutcome};
use poat_pmem::{InjectMode, PmemError, Runtime};
use poat_workloads::{ExpConfig, Micro, Pattern};

use crate::report::TextTable;
use crate::runner::{default_workers, parallel_map, Scale};

/// Fixed ASLR seed for every sweep runtime: crash points are identified
/// by ordinal, so the build must be bit-reproducible across invocations
/// (pool *contents* hold ObjectIDs and digest identically regardless,
/// but determinism also pins the persist-boundary enumeration itself).
const SWEEP_ASLR_SEED: u64 = 0x5EED_CAFE;

/// Campaign configuration for [`sweep`].
#[derive(Clone, Debug)]
pub struct SweepOptions {
    /// Workload sizing (quick = LL+BST × ALL+EACH; full = all six
    /// microbenchmarks × ALL+EACH, more operations, more seeds).
    pub scale: Scale,
    /// Injection modes to run at every point.
    pub modes: Vec<InjectMode>,
    /// Device crash seeds to run at every point (which unpersisted
    /// lines survive is drawn from this seed).
    pub seeds: Vec<u64>,
    /// Cap on points per workload (evenly-spaced sample, first and last
    /// always included). `None` sweeps every enumerated point.
    pub max_points: Option<usize>,
    /// Restrict the campaign to one workload.
    pub workload: Option<(Micro, Pattern)>,
    /// Worker threads for the fan-out.
    pub workers: usize,
}

impl SweepOptions {
    /// The default campaign at the given scale: clean + torn injection
    /// at every point (drop-clwb is opt-in — it breaches the persistence
    /// contract by design and reports detections, not violations).
    pub fn for_scale(scale: Scale) -> Self {
        SweepOptions {
            scale,
            modes: vec![InjectMode::Clean, InjectMode::Torn],
            seeds: match scale {
                Scale::Quick => vec![1, 7],
                Scale::Full => vec![1, 7, 13],
            },
            max_points: None,
            workload: None,
            workers: default_workers(),
        }
    }
}

/// One recovery-invariant violation (or engine failure) found by a sweep.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Persist-boundary ordinal that was crashed.
    pub point: u64,
    /// Device crash seed in effect.
    pub seed: u64,
    /// Injection-mode label (`clean` / `torn` / `drop-clwb`).
    pub mode: &'static str,
    /// Human-readable description.
    pub detail: String,
}

/// Per-workload result of a sweep campaign.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// `BENCH/PATTERN` identity.
    pub workload: String,
    /// Persist boundaries the workload crosses end-to-end.
    pub enumerated: usize,
    /// Points actually crashed (smaller only under `max_points`).
    pub swept: usize,
    /// Crash/recover/verify executions (`swept × modes × seeds`).
    pub runs: usize,
    /// Runs in which the armed point tripped before completion.
    pub crashes: u64,
    /// Violations under clean/torn injection (must be empty).
    pub violations: Vec<Violation>,
    /// Verifier detections under the drop-clwb negative control.
    pub detections: u64,
    /// Largest undo-record count any single recovery applied.
    pub max_undo_applied: u64,
}

/// The workload pairs a campaign covers at each scale.
pub fn default_pairs(scale: Scale) -> Vec<(Micro, Pattern)> {
    let benches: &[Micro] = match scale {
        Scale::Quick => &[Micro::Ll, Micro::Bst],
        Scale::Full => &Micro::ALL,
    };
    let mut pairs = Vec::new();
    for &b in benches {
        for p in [Pattern::All, Pattern::Each] {
            pairs.push((b, p));
        }
    }
    pairs
}

/// `BENCH/PATTERN` display identity of one sweep workload.
pub fn workload_label(bench: Micro, pattern: Pattern) -> String {
    format!("{}/{}", bench.abbrev(), pattern.label())
}

/// Parses `BENCH:PATTERN` (e.g. `LL:ALL`, `BST:EACH`) as given to
/// `--workload`.
pub fn parse_workload(s: &str) -> Option<(Micro, Pattern)> {
    let (b, p) = s.split_once(':')?;
    let bench = *Micro::ALL
        .iter()
        .find(|m| m.abbrev().eq_ignore_ascii_case(b))?;
    let pattern = *Pattern::ALL
        .iter()
        .find(|m| m.label().eq_ignore_ascii_case(p))?;
    Some((bench, pattern))
}

/// Parses an `--inject` argument into the mode list.
pub fn parse_inject(s: &str) -> Option<Vec<InjectMode>> {
    match s {
        "clean" => Some(vec![InjectMode::Clean]),
        "torn" => Some(vec![InjectMode::Torn]),
        "drop-clwb" => Some(vec![InjectMode::DropClwb]),
        "all" => Some(vec![
            InjectMode::Clean,
            InjectMode::Torn,
            InjectMode::DropClwb,
        ]),
        _ => None,
    }
}

/// Operation count per sweep run. Deliberately small: a sweep re-executes
/// the workload once per (point, mode, seed) cell, so total work scales
/// with the *square* of the boundary count.
fn sweep_ops(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 12,
        Scale::Full => 48,
    }
}

/// Deterministic workload RNG seed (key sequence), per workload identity.
fn sweep_seed(bench: Micro, pattern: Pattern) -> u64 {
    workload_label(bench, pattern)
        .bytes()
        .fold(0xFAu64, |a, c| a.wrapping_mul(31).wrapping_add(c as u64))
}

fn build_runtime() -> Runtime {
    Runtime::new(ExpConfig::Base.runtime_config(SWEEP_ASLR_SEED))
}

fn drive(bench: Micro, pattern: Pattern, scale: Scale, rt: &mut Runtime) -> Result<(), PmemError> {
    bench
        .run_ops(rt, pattern, sweep_seed(bench, pattern), sweep_ops(scale))
        .map(|_| ())
}

/// Enumerates every persist boundary one sweep workload crosses.
///
/// # Errors
///
/// Propagates workload failures (the enumeration run does not crash).
pub fn enumerate(
    bench: Micro,
    pattern: Pattern,
    scale: Scale,
) -> Result<Vec<CrashPoint>, PmemError> {
    faultpoint::enumerate_crash_points(build_runtime, |rt| drive(bench, pattern, scale, rt))
}

/// Crashes one workload at one boundary and scores recovery — one cell
/// of the sweep matrix, usable standalone.
///
/// # Errors
///
/// Propagates workload failures other than the injected crash, and
/// recovery failures.
pub fn run_point(
    bench: Micro,
    pattern: Pattern,
    scale: Scale,
    point: u64,
    seed: u64,
    mode: InjectMode,
) -> Result<PointOutcome, PmemError> {
    faultpoint::run_crash_point(
        build_runtime,
        |rt| drive(bench, pattern, scale, rt),
        point,
        seed,
        mode,
    )
}

/// Deterministically re-executes one crash point (the `--replay` path):
/// identical to the sweep's cell for the same `(point, seed, mode)`.
///
/// # Errors
///
/// Propagates the same failures as [`run_point`].
pub fn replay(
    bench: Micro,
    pattern: Pattern,
    scale: Scale,
    point: u64,
    seed: u64,
    mode: InjectMode,
) -> Result<PointOutcome, PmemError> {
    faultpoint::record_replay();
    run_point(bench, pattern, scale, point, seed, mode)
}

/// Evenly-spaced sample of at most `max` points, always keeping the
/// first and last boundary (pool creation and the final fence).
fn sample(points: &[CrashPoint], max: Option<usize>) -> Vec<CrashPoint> {
    match max {
        Some(m) if m > 0 && m < points.len() => {
            if m == 1 {
                return vec![points[points.len() - 1]];
            }
            (0..m)
                .map(|i| points[i * (points.len() - 1) / (m - 1)])
                .collect()
        }
        _ => points.to_vec(),
    }
}

/// Runs the full campaign: per workload, every (sampled) crash point
/// under every mode and seed, fanned out over the worker pool.
///
/// # Errors
///
/// Propagates enumeration failures. Per-cell failures do not abort the
/// campaign; they are reported as violations of the affected cell.
pub fn sweep(opts: &SweepOptions) -> Result<Vec<SweepReport>, PmemError> {
    let pairs = match opts.workload {
        Some(p) => vec![p],
        None => default_pairs(opts.scale),
    };
    let mut metas = Vec::new();
    let mut tasks: Vec<(usize, u64, u64, InjectMode)> = Vec::new();
    for (wi, &(bench, pattern)) in pairs.iter().enumerate() {
        let points = enumerate(bench, pattern, opts.scale)?;
        let swept = sample(&points, opts.max_points);
        for p in &swept {
            for &mode in &opts.modes {
                for &seed in &opts.seeds {
                    tasks.push((wi, p.index, seed, mode));
                }
            }
        }
        metas.push((bench, pattern, points.len(), swept.len()));
    }

    let scale = opts.scale;
    let metas_ref = &metas;
    let outcomes = parallel_map(tasks, opts.workers, move |(wi, point, seed, mode)| {
        let (bench, pattern, ..) = metas_ref[wi];
        (
            wi,
            point,
            seed,
            mode,
            run_point(bench, pattern, scale, point, seed, mode),
        )
    });

    let mut reports: Vec<SweepReport> = metas
        .iter()
        .map(|&(bench, pattern, enumerated, swept)| SweepReport {
            workload: workload_label(bench, pattern),
            enumerated,
            swept,
            runs: 0,
            crashes: 0,
            violations: Vec::new(),
            detections: 0,
            max_undo_applied: 0,
        })
        .collect();
    for (wi, point, seed, mode, outcome) in outcomes {
        let r = &mut reports[wi];
        r.runs += 1;
        match outcome {
            Ok(out) => {
                r.crashes += out.tripped as u64;
                r.max_undo_applied = r.max_undo_applied.max(out.undo_applied);
                if matches!(mode, InjectMode::DropClwb) {
                    r.detections += out.violations.len() as u64;
                } else {
                    r.violations
                        .extend(out.violations.into_iter().map(|detail| Violation {
                            point,
                            seed,
                            mode: mode.label(),
                            detail,
                        }));
                }
            }
            Err(e) => r.violations.push(Violation {
                point,
                seed,
                mode: mode.label(),
                detail: format!("engine error: {e}"),
            }),
        }
    }
    Ok(reports)
}

/// Total clean/torn violations across all workloads (the campaign's
/// pass/fail signal).
pub fn total_violations(reports: &[SweepReport]) -> usize {
    reports.iter().map(|r| r.violations.len()).sum()
}

/// Renders the campaign matrix, one row per workload, plus a detail
/// line per violation (replay instructions included).
pub fn sweep_text(reports: &[SweepReport]) -> String {
    let mut t = TextTable::new(
        "Crash-point sweep (violations must be 0; drop-clwb detections are the negative control)",
        &[
            "Workload",
            "Points",
            "Swept",
            "Runs",
            "Crashes",
            "Violations",
            "Detections",
            "MaxUndo",
            "FirstFailure",
        ],
    );
    for r in reports {
        let first = r
            .violations
            .first()
            .map(|v| format!("{}:{} ({})", v.point, v.seed, v.mode))
            .unwrap_or_else(|| "-".into());
        t.row(vec![
            r.workload.clone(),
            r.enumerated.to_string(),
            r.swept.to_string(),
            r.runs.to_string(),
            r.crashes.to_string(),
            r.violations.len().to_string(),
            r.detections.to_string(),
            r.max_undo_applied.to_string(),
            first,
        ]);
    }
    let mut out = t.render();
    for r in reports {
        for v in &r.violations {
            out.push_str(&format!(
                "\nVIOLATION {} point {} seed {} [{}]: {}\n  replay: repro crash-sweep --workload {} --inject {} --replay {}:{}",
                r.workload,
                v.point,
                v.seed,
                v.mode,
                v.detail,
                r.workload.replace('/', ":"),
                v.mode,
                v.point,
                v.seed
            ));
        }
    }
    out
}

// SPDX-License-Identifier: MIT OR Apache-2.0
//! Operator-facing status lines from library code, routed through an
//! installable sink (the same discipline as [`crate::hud`]): the
//! library never writes to stderr itself, because harness stdout is
//! machine-parsed and the binary decides where diagnostics land.
//!
//! The `repro` binary installs a stderr sink at startup; with no sink
//! installed (unit tests, embedding) the lines are dropped.

use std::sync::Mutex;

/// Destination for status lines (installed by the binary).
pub type Sink = Box<dyn Fn(&str) + Send + Sync>;

static SINK: Mutex<Option<Sink>> = Mutex::new(None);

/// Installs the sink status lines are rendered through.
pub fn set_sink(sink: Sink) {
    *SINK.lock().unwrap_or_else(|e| e.into_inner()) = Some(sink);
}

/// Emits one status line through the installed sink, if any.
pub fn emit(line: &str) {
    if let Some(sink) = SINK.lock().unwrap_or_else(|e| e.into_inner()).as_ref() {
        sink(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn emit_without_a_sink_is_silent_and_with_one_delivers() {
        // Runs single-process per test binary, so installing a sink here
        // is safe: no other harness unit test asserts sink behavior.
        emit("dropped on the floor");
        let seen = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&seen);
        set_sink(Box::new(move |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        }));
        emit("delivered");
        assert_eq!(seen.load(Ordering::Relaxed), 1);
    }
}

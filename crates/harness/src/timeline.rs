//! Per-workload timeline collection (`repro <artifact> --timeline DIR`).
//!
//! A dedicated single-run-at-a-time pass over the microbenchmarks: for
//! each bench it captures the event trace of (a) the BASE run's software
//! translation (events are emitted at trace-generation time), (b) an
//! in-order replay of the OPT run under the *Pipelined* POLB, and (c) the
//! same replay under the *Parallel* POLB — clearing the shared ring
//! buffer between stages so every timeline is attributable to exactly
//! one run. The windowed rows land in `timeline_<bench>_<design>.csv`
//! and a summary table in the text report (see `docs/TRACING.md`).

use std::path::Path;

use poat_telemetry::events::{self, TraceDesign};
use poat_telemetry::timeline::{windows, windows_csv, TimelineWindow};
use poat_workloads::{ExpConfig, Micro, Pattern};

use crate::report::{pct, TextTable};
use crate::runner::{self, Core, Scale};

/// The windowed event timeline of one (bench, design) pair.
#[derive(Clone, Debug)]
pub struct WorkloadTimeline {
    /// The microbenchmark.
    pub bench: Micro,
    /// The translation design whose events were captured.
    pub design: TraceDesign,
    /// Window width, in instructions (trace positions for Software).
    pub window: u64,
    /// Per-window aggregates, ascending by start instruction.
    pub windows: Vec<TimelineWindow>,
}

impl WorkloadTimeline {
    fn sum(&self, f: impl Fn(&TimelineWindow) -> u64) -> u64 {
        self.windows.iter().map(f).sum()
    }

    /// Whole-run miss rate: POLB misses per lookup for the hardware
    /// designs, predictor misses per call for Software.
    pub fn miss_rate(&self) -> f64 {
        let (miss, total) = if self.design == TraceDesign::Software {
            let m = self.sum(|w| w.soft_misses);
            (m, m + self.sum(|w| w.soft_hits))
        } else {
            let m = self.sum(|w| w.polb_misses);
            (m, m + self.sum(|w| w.polb_hits))
        };
        if total == 0 {
            0.0
        } else {
            miss as f64 / total as f64
        }
    }

    /// Whole-run mean POT-walk probe count (0 for Software).
    pub fn mean_probes(&self) -> f64 {
        let walks = self.sum(|w| w.pot_walks);
        if walks == 0 {
            0.0
        } else {
            self.sum(|w| w.walk_probes) as f64 / walks as f64
        }
    }
}

/// Picks a window width giving a readable number of rows (~64) for a run
/// of `len` instructions: a power of two, at least 1024.
fn window_for(len: u64) -> u64 {
    (len / 64).max(1).next_power_of_two().max(1024)
}

/// Drains the installed recorder into per-window rows and clears it.
fn drain(window: u64) -> Vec<TimelineWindow> {
    let Some(rec) = events::installed() else {
        return Vec::new();
    };
    let evs = rec.events();
    rec.clear();
    windows(&evs, window)
}

/// Runs the timeline pass: every microbenchmark under the Random access
/// pattern, three designs each.
///
/// Requires an installed, enabled event recorder
/// ([`poat_telemetry::events::install`]); returns an empty vec otherwise.
/// Runs serially — per-run attribution needs the ring to itself.
pub fn collect(scale: Scale) -> Vec<WorkloadTimeline> {
    if events::installed().is_none() || !events::is_enabled() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for bench in Micro::ALL {
        // BASE: oid_direct emits Software events while the workload runs.
        if let Some(rec) = events::installed() {
            rec.clear();
        }
        let base = runner::run_micro(bench, Pattern::Random, ExpConfig::Base, scale);
        let w = window_for(base.trace.len() as u64);
        out.push(WorkloadTimeline {
            bench,
            design: TraceDesign::Software,
            window: w,
            windows: drain(w),
        });

        // OPT: the hardware designs emit during the in-order replay; any
        // events from trace generation itself are discarded first.
        let opt = runner::run_micro(bench, Pattern::Random, ExpConfig::Opt, scale);
        if let Some(rec) = events::installed() {
            rec.clear();
        }
        let w = window_for(opt.summary.instructions);
        runner::simulate(&opt, Core::InOrder, runner::pipelined());
        out.push(WorkloadTimeline {
            bench,
            design: TraceDesign::Pipelined,
            window: w,
            windows: drain(w),
        });
        runner::simulate(&opt, Core::InOrder, runner::parallel());
        out.push(WorkloadTimeline {
            bench,
            design: TraceDesign::Parallel,
            window: w,
            windows: drain(w),
        });
    }
    out
}

/// Filename-safe bench slug: lowercase, alphanumerics only ("B+T" → "bt").
fn bench_slug(bench: Micro) -> String {
    bench
        .abbrev()
        .chars()
        .filter(char::is_ascii_alphanumeric)
        .map(|c| c.to_ascii_lowercase())
        .collect()
}

/// Writes one `timeline_<bench>_<design>.csv` per collected timeline.
///
/// # Errors
///
/// Propagates I/O errors from file creation/writes.
pub fn write_csvs(dir: &Path, rows: &[WorkloadTimeline]) -> std::io::Result<()> {
    for t in rows {
        let name = format!("timeline_{}_{}.csv", bench_slug(t.bench), t.design.name());
        std::fs::write(dir.join(name), windows_csv(&t.windows))?;
    }
    Ok(())
}

/// Renders the per-workload timeline summary table.
pub fn text(rows: &[WorkloadTimeline]) -> String {
    let mut t = TextTable::new(
        "Timeline (per-workload event-trace summary, Random pattern)",
        &[
            "Bench",
            "Design",
            "Window",
            "Rows",
            "Accesses",
            "MissRate",
            "Walks",
            "MeanProbes",
            "Faults",
        ],
    );
    for wt in rows {
        t.row(vec![
            wt.bench.abbrev().to_string(),
            wt.design.name().to_string(),
            wt.window.to_string(),
            wt.windows.len().to_string(),
            wt.sum(|w| w.accesses).to_string(),
            pct(wt.miss_rate()),
            wt.sum(|w| w.pot_walks).to_string(),
            format!("{:.2}", wt.mean_probes()),
            wt.sum(|w| w.faults).to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_for_is_power_of_two_and_floored() {
        assert_eq!(window_for(0), 1024);
        assert_eq!(window_for(100), 1024);
        assert_eq!(window_for(1 << 20), 1 << 14);
        assert!(window_for(u64::MAX / 128).is_power_of_two());
    }

    #[test]
    fn collect_without_recorder_is_empty() {
        // The recorder is process-global; only assert the uninstalled
        // case when no other test has installed it.
        if events::installed().is_none() {
            assert!(collect(Scale::Quick).is_empty());
        }
    }

    #[test]
    fn collect_covers_all_designs_when_tracing() {
        events::install(1 << 16, 1);
        events::set_enabled(true);
        let rows = collect(Scale::Quick);
        assert_eq!(rows.len(), Micro::ALL.len() * 3);
        for design in [
            TraceDesign::Software,
            TraceDesign::Pipelined,
            TraceDesign::Parallel,
        ] {
            let with_events = rows
                .iter()
                .filter(|r| r.design == design && !r.windows.is_empty())
                .count();
            assert!(with_events > 0, "no {} timeline has events", design.name());
        }
        // Hardware timelines must witness actual POT walks.
        assert!(rows
            .iter()
            .filter(|r| r.design != TraceDesign::Software)
            .any(|r| r.sum(|w| w.pot_walks) > 0));
        let dir = std::env::temp_dir().join("poat_timeline_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        write_csvs(&dir, &rows).unwrap();
        let one = dir.join("timeline_ll_pipelined.csv");
        let body = std::fs::read_to_string(one).unwrap();
        assert!(body.starts_with("design,start_instr"));
        std::fs::remove_dir_all(&dir).ok();
        events::set_enabled(false);
        let rendered = text(&rows);
        assert!(rendered.contains("## Timeline"));
        assert!(rendered.contains("pipelined"));
    }
}

// SPDX-License-Identifier: MIT OR Apache-2.0
//! Output-artifact naming and crash-safe writes.
//!
//! Artifacts (`results_full.json`, metrics snapshots) are written twice
//! per ledgered run: once under a run-id-suffixed name that no later
//! run will touch, and once under the plain "latest" name scripts rely
//! on. Both writes go through a temp-file + rename so a crash mid-write
//! can never leave a torn JSON file at either name — rename within a
//! directory is atomic on POSIX. The versioned copy is the durable
//! record: a failure writing it panics, while a failure refreshing the
//! latest copy only warns (the data is already safe under the versioned
//! name).

use std::io::Write;
use std::path::Path;

use crate::notify;

/// `results_full.json` + `run000007` → `results_full-run000007.json`:
/// the per-run artifact name that stops successive runs clobbering each
/// other (the plain name stays as the "latest" copy for scripts).
pub fn with_run_id(path: &str, run_id: &str) -> String {
    let p = Path::new(path);
    match (
        p.file_stem().and_then(|s| s.to_str()),
        p.extension().and_then(|e| e.to_str()),
    ) {
        (Some(stem), Some(ext)) => p
            .with_file_name(format!("{stem}-{run_id}.{ext}"))
            .display()
            .to_string(),
        _ => format!("{path}-{run_id}"),
    }
}

/// Writes `contents` to `path` via a temp file in the same directory
/// followed by a rename, so readers (and crash recovery) only ever see
/// the old bytes or the new bytes — never a torn prefix.
///
/// # Errors
///
/// Temp-file creation/write/sync or rename failures; the temp file is
/// removed on failure.
pub fn write_atomic(path: &str, contents: &str) -> std::io::Result<()> {
    let tmp = format!("{path}.tmp.{}", std::process::id());
    let write_result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_data()?;
        Ok(())
    })();
    if let Err(e) = write_result {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Writes an output artifact under its run-id name (when the run was
/// ledgered) plus the plain "latest" name scripts rely on. The
/// versioned write must succeed (panic otherwise); a failure refreshing
/// the latest copy degrades to a warning, because the versioned copy is
/// already durable.
///
/// # Panics
///
/// When the primary (versioned, or plain if unledgered) write fails.
pub fn write_artifact(what: &str, path: &str, run_id: Option<&str>, contents: &str) {
    if let Some(id) = run_id {
        let versioned = with_run_id(path, id);
        write_atomic(&versioned, contents).unwrap_or_else(|e| panic!("writing {versioned}: {e}"));
        match write_atomic(path, contents) {
            Ok(()) => notify::emit(&format!(
                "{what} written to {versioned} (latest copy: {path})"
            )),
            Err(e) => notify::emit(&format!(
                "{what} written to {versioned}; warning: refreshing latest copy {path} failed: {e}"
            )),
        }
    } else {
        write_atomic(path, contents).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        notify::emit(&format!("{what} written to {path}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_id_lands_before_the_extension() {
        assert_eq!(
            with_run_id("results_full.json", "run000007"),
            "results_full-run000007.json"
        );
        assert_eq!(
            with_run_id("out/deep/results.json", "run000001"),
            "out/deep/results-run000001.json"
        );
    }

    #[test]
    fn extensionless_paths_get_a_plain_suffix() {
        assert_eq!(with_run_id("results", "run000002"), "results-run000002");
        assert_eq!(
            with_run_id("out/results", "run000002"),
            "out/results-run000002"
        );
    }

    #[test]
    fn dotfile_names_are_not_mistaken_for_extensions() {
        // `.gitignore`-style names have no stem/extension split; the id
        // is appended whole rather than producing `-run....gitignore`.
        assert_eq!(with_run_id(".spoolrc", "run000003"), ".spoolrc-run000003");
        // A dotted directory plus a real extension still splits right.
        assert_eq!(
            with_run_id(".poat/ledger.poatlgr", "run000004"),
            ".poat/ledger-run000004.poatlgr"
        );
    }

    #[test]
    fn atomic_write_replaces_contents_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("poat_artifact_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.json");
        let path_s = path.to_str().unwrap();
        write_atomic(path_s, "{\"v\":1}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\":1}");
        write_atomic(path_s, "{\"v\":2}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\":2}");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn atomic_write_into_missing_directory_fails_cleanly() {
        let path = std::env::temp_dir()
            .join(format!("poat_artifact_missing_{}", std::process::id()))
            .join("nope")
            .join("artifact.json");
        assert!(write_atomic(path.to_str().unwrap(), "x").is_err());
    }

    #[test]
    fn write_artifact_survives_an_unwritable_latest_copy() {
        let dir = std::env::temp_dir().join(format!("poat_artifact_lat_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // The "latest" path is a directory: rename over it fails, but the
        // versioned write already happened, so this must not panic.
        let latest = dir.join("results.json");
        std::fs::create_dir_all(&latest).unwrap();
        write_artifact("results", latest.to_str().unwrap(), Some("run000009"), "{}");
        let versioned = dir.join("results-run000009.json");
        assert_eq!(std::fs::read_to_string(&versioned).unwrap(), "{}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

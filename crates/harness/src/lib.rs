// SPDX-License-Identifier: MIT OR Apache-2.0
//! # poat-harness — regenerating the paper's evaluation
//!
//! One runner per table/figure of the MICRO'17 evaluation (§6):
//!
//! | artifact | runner | output |
//! |----------|--------|--------|
//! | Table 2 | [`experiments::table2`] | `oid_direct` instruction counts & predictor miss rate |
//! | Figure 9(a) | [`experiments::main_matrix`] | in-order OPT/BASE speedups (Pipelined, Parallel, ideal) |
//! | Figure 9(b) | [`experiments::main_matrix`] | out-of-order speedups (Pipelined, ideal) |
//! | Table 8 | [`experiments::main_matrix`] | POLB miss rates |
//! | §1 headline | [`experiments::main_matrix`] | dynamic-instruction reduction |
//! | Figure 10 | [`experiments::fig10`] | `_NTX` speedups (durability overhead removed) |
//! | Figure 11 | [`experiments::fig11`] | POLB-size sensitivity |
//! | Table 9 | [`experiments::fig11`] | POLB miss rates across sizes |
//! | Figure 12 | [`experiments::fig12`] | POT-walk-penalty sensitivity |
//!
//! Beyond the paper's artifacts, [`ablations`] adds four design-choice
//! studies (`repro ablations`): the last-value predictor, the POLB access
//! latency, a next-line prefetcher, and POT occupancy (§8 future work).
//! [`crash_sweep`] runs deterministic crash-point campaigns over the
//! microbenchmarks (`repro crash-sweep`), crashing each workload at every
//! persist boundary and scoring recovery.
//!
//! The `repro` binary drives them:
//!
//! ```text
//! repro all            # every table and figure at paper scale
//! repro fig9a --quick  # one artifact at smoke-test scale
//! repro all --json out.json
//! ```
//!
//! [`serve`] turns the batch harness into an always-on service: a
//! filesystem job spool, an async queue over the same worker pool, and
//! the durable `poat-catalog` run catalog recording every job — driven
//! by `repro serve` / `repro submit` / `repro jobs` /
//! `repro catalog query` (docs/OBSERVABILITY.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod artifact;
pub mod crash_sweep;
pub mod csv;
pub mod experiments;
pub mod hud;
pub mod jobs;
pub mod notify;
pub mod report;
pub mod runner;
pub mod serve;
pub mod timeline;

pub use runner::{run_micro, run_tpcc, simulate, Core, Scale, WorkloadRun};

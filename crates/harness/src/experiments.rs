//! The experiment runners — one per table/figure of the paper's
//! evaluation (§6). Each returns typed, serializable results and can
//! render itself as a paper-style text table.

use serde::Serialize;

use poat_core::{PolbDesign, TranslationConfig};
use poat_workloads::{ExpConfig, Micro, Pattern, TpccPattern};

use poat_sim::SimResult;

use crate::report::{fx, geomean, pct, TextTable};
use crate::runner::{
    default_workers, ideal, parallel, parallel_map, pipelined, run_micro, run_micro_seeded,
    run_tpcc, simulate, Core, Scale, WorkloadRun,
};

// ---------------------------------------------------------------------
// Table 2 — software translation cost
// ---------------------------------------------------------------------

/// One Table 2 row: mean `oid_direct` instructions under ALL and EACH,
/// and the last-value-predictor miss rate under EACH.
#[derive(Clone, Debug, Serialize)]
pub struct Table2Row {
    /// Benchmark abbreviation.
    pub bench: String,
    /// Mean instructions per `oid_direct` call, ALL pattern.
    pub insns_all: f64,
    /// Mean instructions per `oid_direct` call, EACH pattern.
    pub insns_each: f64,
    /// Predictor miss rate under EACH.
    pub miss_each: f64,
}

/// Runs Table 2: BASE configuration, ALL and EACH patterns.
pub fn table2(scale: Scale) -> Vec<Table2Row> {
    let work: Vec<Micro> = Micro::ALL.to_vec();
    let mut rows = parallel_map(work, default_workers(), |bench| {
        let all = run_micro(bench, Pattern::All, ExpConfig::Base, scale);
        let each = run_micro(bench, Pattern::Each, ExpConfig::Base, scale);
        let abbrev = bench.abbrev();
        all.xlat.publish(&[
            ("artifact", "table2"),
            ("bench", abbrev),
            ("pattern", "ALL"),
        ]);
        each.xlat.publish(&[
            ("artifact", "table2"),
            ("bench", abbrev),
            ("pattern", "EACH"),
        ]);
        Table2Row {
            bench: abbrev.to_owned(),
            insns_all: all.xlat.mean_instructions(),
            insns_each: each.xlat.mean_instructions(),
            miss_each: each.xlat.predictor_miss_rate(),
        }
    });
    rows.push(Table2Row {
        bench: "GeoMean".to_owned(),
        insns_all: geomean(&rows.iter().map(|r| r.insns_all).collect::<Vec<_>>()),
        insns_each: geomean(&rows.iter().map(|r| r.insns_each).collect::<Vec<_>>()),
        miss_each: geomean(&rows.iter().map(|r| r.miss_each).collect::<Vec<_>>()),
    });
    rows
}

/// Renders Table 2.
pub fn table2_text(rows: &[Table2Row]) -> String {
    let mut t = TextTable::new(
        "Table 2 — oid_direct dynamic instructions (BASE)",
        &["Bench", "Insns on ALL", "Insns on EACH", "Miss on recent"],
    );
    for r in rows {
        t.row(vec![
            r.bench.clone(),
            format!("{:.1}", r.insns_all),
            format!("{:.1}", r.insns_each),
            pct(r.miss_each),
        ]);
    }
    t.render()
}

// ---------------------------------------------------------------------
// Figure 9 (a, b), Table 8 and the instruction-reduction headline —
// computed together from one pass over the (workload, pattern) matrix.
// ---------------------------------------------------------------------

/// Speedup of OPT over BASE for one workload/pattern (one Figure 9 bar
/// group).
#[derive(Clone, Debug, Serialize)]
pub struct SpeedupRow {
    /// Workload abbreviation ("LL" … "TPCC").
    pub bench: String,
    /// Pattern label ("ALL"/"EACH"/"RANDOM"/"TPCC_ALL"/"TPCC_EACH").
    pub pattern: String,
    /// Pipelined-design speedup.
    pub pipelined: f64,
    /// Parallel-design speedup (absent on the out-of-order core).
    pub parallel: Option<f64>,
    /// Ideal (zero-overhead translation) speedup — the red dot.
    pub ideal: f64,
}

/// One Table 8 row: POLB miss rates of the OPT runs. As in the paper,
/// the ALL/RANDOM/EACH columns are the *Parallel* design (Pipelined only
/// shows EACH: its ALL and RANDOM runs miss only during warm-up).
#[derive(Clone, Debug, Serialize)]
pub struct Table8Row {
    /// Workload abbreviation.
    pub bench: String,
    /// Parallel, ALL pattern.
    pub par_all: f64,
    /// Parallel, RANDOM pattern (absent for TPCC).
    pub par_random: Option<f64>,
    /// Parallel, EACH pattern.
    pub par_each: f64,
    /// Pipelined, EACH pattern.
    pub pipe_each: f64,
}

/// Dynamic-instruction reduction of OPT vs BASE (§1: 43.9% on average).
#[derive(Clone, Debug, Serialize)]
pub struct InstrRow {
    /// Workload abbreviation.
    pub bench: String,
    /// Pattern label.
    pub pattern: String,
    /// BASE dynamic instructions.
    pub base_instructions: u64,
    /// OPT dynamic instructions.
    pub opt_instructions: u64,
    /// Fractional reduction (0.439 = 43.9%).
    pub reduction: f64,
}

/// Everything the main matrix pass produces.
#[derive(Clone, Debug, Serialize)]
pub struct MainResults {
    /// Figure 9(a): in-order speedups.
    pub fig9a: Vec<SpeedupRow>,
    /// Figure 9(b): out-of-order speedups (Pipelined only).
    pub fig9b: Vec<SpeedupRow>,
    /// Table 8: POLB miss rates.
    pub table8: Vec<Table8Row>,
    /// Instruction-count reduction per workload/pattern.
    pub instrs: Vec<InstrRow>,
}

#[derive(Debug)]
struct Cell {
    bench: String,
    pattern: String,
    is_tpcc: bool,
    base_instr: u64,
    opt_instr: u64,
    ino_base: u64,
    ino_pipe: u64,
    ino_par: u64,
    ino_ideal: u64,
    ooo_base: u64,
    ooo_pipe: u64,
    ooo_ideal: u64,
    pipe_missrate: f64,
    par_missrate: f64,
}

fn eval_cell(
    bench: &str,
    pattern: &str,
    base: &WorkloadRun,
    opt: &WorkloadRun,
) -> (u64, u64, u64, u64, u64, u64, u64, f64, f64) {
    // Publish every simulation into the registry under the same labels the
    // tables are keyed by: Table 8 / Figure 9 values and the metrics
    // snapshot are two views of the same SimResults.
    let publish = |r: &SimResult, config: &str, core: &str, design: &str| {
        r.publish(&[
            ("artifact", "main_matrix"),
            ("bench", bench),
            ("pattern", pattern),
            ("config", config),
            ("core", core),
            ("design", design),
        ]);
    };
    let r_ino_base = simulate(base, Core::InOrder, pipelined());
    publish(&r_ino_base, "base", "inorder", "pipelined");
    let r_ooo_base = simulate(base, Core::OutOfOrder, pipelined());
    publish(&r_ooo_base, "base", "ooo", "pipelined");
    let r_pipe = simulate(opt, Core::InOrder, pipelined());
    publish(&r_pipe, "opt", "inorder", "pipelined");
    let r_par = simulate(opt, Core::InOrder, parallel());
    publish(&r_par, "opt", "inorder", "parallel");
    let r_ino_ideal = simulate(opt, Core::InOrder, ideal());
    publish(&r_ino_ideal, "opt", "inorder", "ideal");
    let r_ooo_pipe = simulate(opt, Core::OutOfOrder, pipelined());
    publish(&r_ooo_pipe, "opt", "ooo", "pipelined");
    let r_ooo_ideal = simulate(opt, Core::OutOfOrder, ideal());
    publish(&r_ooo_ideal, "opt", "ooo", "ideal");
    (
        r_ino_base.cycles,
        r_pipe.cycles,
        r_par.cycles,
        r_ino_ideal.cycles,
        r_ooo_base.cycles,
        r_ooo_pipe.cycles,
        r_ooo_ideal.cycles,
        r_pipe.translation.polb.miss_rate(),
        r_par.translation.polb.miss_rate(),
    )
}

/// Runs the Figure 9 / Table 8 / instruction-reduction matrix: all six
/// microbenchmarks × {ALL, EACH, RANDOM} plus TPCC × {ALL, EACH}, each
/// under BASE and OPT.
pub fn main_matrix(scale: Scale) -> MainResults {
    #[derive(Clone, Copy)]
    enum Work {
        M(Micro, Pattern),
        T(TpccPattern),
    }
    let mut work: Vec<Work> = Vec::new();
    for bench in Micro::ALL {
        for pattern in Pattern::ALL {
            work.push(Work::M(bench, pattern));
        }
    }
    work.push(Work::T(TpccPattern::All));
    work.push(Work::T(TpccPattern::Each));

    let cells: Vec<Cell> = parallel_map(work, default_workers(), |w| {
        let (bench, pattern, is_tpcc, base, opt) = match w {
            Work::M(b, p) => (
                b.abbrev().to_owned(),
                p.label().to_owned(),
                false,
                run_micro(b, p, ExpConfig::Base, scale),
                run_micro(b, p, ExpConfig::Opt, scale),
            ),
            Work::T(p) => (
                "TPCC".to_owned(),
                p.label().to_owned(),
                true,
                run_tpcc(p, ExpConfig::Base, scale),
                run_tpcc(p, ExpConfig::Opt, scale),
            ),
        };
        let (ino_base, ino_pipe, ino_par, ino_ideal, ooo_base, ooo_pipe, ooo_ideal, pmr, qmr) =
            eval_cell(&bench, &pattern, &base, &opt);
        Cell {
            bench,
            pattern,
            is_tpcc,
            base_instr: base.summary.instructions,
            opt_instr: opt.summary.instructions,
            ino_base,
            ino_pipe,
            ino_par,
            ino_ideal,
            ooo_base,
            ooo_pipe,
            ooo_ideal,
            pipe_missrate: pmr,
            par_missrate: qmr,
        }
    });

    let ratio = |num: u64, den: u64| num as f64 / den.max(1) as f64;
    let mut fig9a = Vec::new();
    let mut fig9b = Vec::new();
    let mut instrs = Vec::new();
    for c in &cells {
        fig9a.push(SpeedupRow {
            bench: c.bench.clone(),
            pattern: c.pattern.clone(),
            pipelined: ratio(c.ino_base, c.ino_pipe),
            parallel: Some(ratio(c.ino_base, c.ino_par)),
            ideal: ratio(c.ino_base, c.ino_ideal),
        });
        fig9b.push(SpeedupRow {
            bench: c.bench.clone(),
            pattern: c.pattern.clone(),
            pipelined: ratio(c.ooo_base, c.ooo_pipe),
            parallel: None,
            ideal: ratio(c.ooo_base, c.ooo_ideal),
        });
        instrs.push(InstrRow {
            bench: c.bench.clone(),
            pattern: c.pattern.clone(),
            base_instructions: c.base_instr,
            opt_instructions: c.opt_instr,
            reduction: 1.0 - ratio(c.opt_instr, c.base_instr),
        });
    }

    // Table 8: fold each bench's patterns into one row.
    let mut table8 = Vec::new();
    let benches: Vec<String> = {
        let mut seen = Vec::new();
        for c in &cells {
            if !seen.contains(&c.bench) {
                seen.push(c.bench.clone());
            }
        }
        seen
    };
    for b in benches {
        let find = |p: &str| {
            cells
                .iter()
                .find(|c| c.bench == b && c.pattern.ends_with(p))
        };
        let is_tpcc = cells.iter().any(|c| c.bench == b && c.is_tpcc);
        let (all_l, each_l, rand_l) = if is_tpcc {
            ("TPCC_ALL", "TPCC_EACH", "")
        } else {
            ("ALL", "EACH", "RANDOM")
        };
        let all = find(all_l).expect("ALL cell exists");
        let each = find(each_l).expect("EACH cell exists");
        table8.push(Table8Row {
            bench: b.clone(),
            par_all: all.par_missrate,
            par_random: if is_tpcc {
                None
            } else {
                Some(find(rand_l).expect("RANDOM cell exists").par_missrate)
            },
            par_each: each.par_missrate,
            pipe_each: each.pipe_missrate,
        });
    }

    MainResults {
        fig9a,
        fig9b,
        table8,
        instrs,
    }
}

fn speedup_table(title: &str, rows: &[SpeedupRow], with_parallel: bool) -> String {
    let mut header = vec!["Bench", "Pattern", "Pipelined"];
    if with_parallel {
        header.push("Parallel");
    }
    header.push("Ideal");
    let mut t = TextTable::new(title, &header);
    for r in rows {
        let mut cells = vec![r.bench.clone(), r.pattern.clone(), fx(r.pipelined)];
        if with_parallel {
            cells.push(r.parallel.map(fx).unwrap_or_else(|| "-".into()));
        }
        cells.push(fx(r.ideal));
        t.row(cells);
    }
    // Per-pattern geomeans over the microbenchmarks.
    for pattern in ["ALL", "EACH", "RANDOM"] {
        let sel: Vec<&SpeedupRow> = rows
            .iter()
            .filter(|r| r.pattern == pattern && r.bench != "TPCC")
            .collect();
        if sel.is_empty() {
            continue;
        }
        let gp = geomean(&sel.iter().map(|r| r.pipelined).collect::<Vec<_>>());
        let gq = geomean(&sel.iter().filter_map(|r| r.parallel).collect::<Vec<_>>());
        let gi = geomean(&sel.iter().map(|r| r.ideal).collect::<Vec<_>>());
        let mut cells = vec!["GeoMean".into(), pattern.into(), fx(gp)];
        if with_parallel {
            cells.push(fx(gq));
        }
        cells.push(fx(gi));
        t.row(cells);
    }
    t.render()
}

/// Renders Figure 9(a) as a table of bar heights.
pub fn fig9a_text(rows: &[SpeedupRow]) -> String {
    speedup_table("Figure 9(a) — OPT/BASE speedup, in-order core", rows, true)
}

/// Renders Figure 9(b).
pub fn fig9b_text(rows: &[SpeedupRow]) -> String {
    speedup_table(
        "Figure 9(b) — OPT/BASE speedup, out-of-order core (Pipelined)",
        rows,
        false,
    )
}

/// Renders Table 8.
pub fn table8_text(rows: &[Table8Row]) -> String {
    let mut t = TextTable::new(
        "Table 8 — POLB miss rates (OPT; ALL/RANDOM/EACH = Parallel)",
        &["Bench", "Par ALL", "Par RANDOM", "Par EACH", "Pipe EACH"],
    );
    for r in rows {
        t.row(vec![
            r.bench.clone(),
            pct(r.par_all),
            r.par_random.map(pct).unwrap_or_else(|| "-".into()),
            pct(r.par_each),
            pct(r.pipe_each),
        ]);
    }
    t.render()
}

/// Renders the instruction-reduction headline (§1: 43.9% on average).
pub fn instrs_text(rows: &[InstrRow]) -> String {
    let mut t = TextTable::new(
        "Dynamic-instruction reduction, OPT vs BASE",
        &["Bench", "Pattern", "BASE insns", "OPT insns", "Reduction"],
    );
    for r in rows {
        t.row(vec![
            r.bench.clone(),
            r.pattern.clone(),
            r.base_instructions.to_string(),
            r.opt_instructions.to_string(),
            pct(r.reduction),
        ]);
    }
    let micro: Vec<f64> = rows
        .iter()
        .filter(|r| r.bench != "TPCC")
        .map(|r| r.reduction)
        .collect();
    let mean = micro.iter().sum::<f64>() / micro.len().max(1) as f64;
    t.row(vec![
        "Mean".into(),
        "micro".into(),
        "-".into(),
        "-".into(),
        pct(mean),
    ]);
    t.render()
}

// ---------------------------------------------------------------------
// Figure 10 — overhead of durability/atomicity (the _NTX configurations)
// ---------------------------------------------------------------------

/// One Figure 10 bar group: OPT_NTX/BASE_NTX speedups, in-order.
#[derive(Clone, Debug, Serialize)]
pub struct Fig10Row {
    /// Benchmark abbreviation.
    pub bench: String,
    /// Pattern label.
    pub pattern: String,
    /// Pipelined speedup.
    pub pipelined: f64,
    /// Parallel speedup.
    pub parallel: f64,
}

/// Runs Figure 10.
pub fn fig10(scale: Scale) -> Vec<Fig10Row> {
    let mut work = Vec::new();
    for bench in Micro::ALL {
        for pattern in Pattern::ALL {
            work.push((bench, pattern));
        }
    }
    parallel_map(work, default_workers(), |(bench, pattern)| {
        let base = run_micro(bench, pattern, ExpConfig::BaseNtx, scale);
        let opt = run_micro(bench, pattern, ExpConfig::OptNtx, scale);
        let publish = |r: &SimResult, config: &str, design: &str| {
            r.publish(&[
                ("artifact", "fig10"),
                ("bench", bench.abbrev()),
                ("pattern", pattern.label()),
                ("config", config),
                ("design", design),
            ]);
        };
        let r_base = simulate(&base, Core::InOrder, pipelined());
        publish(&r_base, "base_ntx", "pipelined");
        let r_pipe = simulate(&opt, Core::InOrder, pipelined());
        publish(&r_pipe, "opt_ntx", "pipelined");
        let r_par = simulate(&opt, Core::InOrder, parallel());
        publish(&r_par, "opt_ntx", "parallel");
        Fig10Row {
            bench: bench.abbrev().to_owned(),
            pattern: pattern.label().to_owned(),
            pipelined: r_base.cycles as f64 / r_pipe.cycles.max(1) as f64,
            parallel: r_base.cycles as f64 / r_par.cycles.max(1) as f64,
        }
    })
}

/// Renders Figure 10.
pub fn fig10_text(rows: &[Fig10Row]) -> String {
    let mut t = TextTable::new(
        "Figure 10 — OPT_NTX/BASE_NTX speedup, in-order core",
        &["Bench", "Pattern", "Pipelined", "Parallel"],
    );
    for r in rows {
        t.row(vec![
            r.bench.clone(),
            r.pattern.clone(),
            fx(r.pipelined),
            fx(r.parallel),
        ]);
    }
    for pattern in ["ALL", "EACH", "RANDOM"] {
        let sel: Vec<&Fig10Row> = rows.iter().filter(|r| r.pattern == pattern).collect();
        t.row(vec![
            "GeoMean".into(),
            pattern.into(),
            fx(geomean(
                &sel.iter().map(|r| r.pipelined).collect::<Vec<_>>(),
            )),
            fx(geomean(&sel.iter().map(|r| r.parallel).collect::<Vec<_>>())),
        ]);
    }
    t.render()
}

// ---------------------------------------------------------------------
// Figure 11 + Table 9 — sensitivity to POLB size (RANDOM pattern, _NTX)
// ---------------------------------------------------------------------

/// POLB sizes swept by Figure 11 (`0` = no POLB: every translation walks
/// the POT).
pub const POLB_SIZES: [usize; 5] = [0, 1, 4, 32, 128];

/// One benchmark's POLB-size sweep.
#[derive(Clone, Debug, Serialize)]
pub struct Fig11Row {
    /// Benchmark abbreviation.
    pub bench: String,
    /// OPT_NTX/BASE_NTX speedup per size, Pipelined.
    pub pipelined: Vec<f64>,
    /// Speedup per size, Parallel.
    pub parallel: Vec<f64>,
    /// POLB miss rate per size, Pipelined (Table 9, left half).
    pub pipe_miss: Vec<f64>,
    /// POLB miss rate per size, Parallel (Table 9, right half).
    pub par_miss: Vec<f64>,
}

/// Runs Figure 11 and Table 9 in one sweep.
pub fn fig11(scale: Scale) -> Vec<Fig11Row> {
    parallel_map(Micro::ALL.to_vec(), default_workers(), |bench| {
        let base = run_micro(bench, Pattern::Random, ExpConfig::BaseNtx, scale);
        let opt = run_micro(bench, Pattern::Random, ExpConfig::OptNtx, scale);
        let base_cycles = simulate(&base, Core::InOrder, pipelined()).cycles;
        let mut row = Fig11Row {
            bench: bench.abbrev().to_owned(),
            pipelined: Vec::new(),
            parallel: Vec::new(),
            pipe_miss: Vec::new(),
            par_miss: Vec::new(),
        };
        for size in POLB_SIZES {
            for design in [PolbDesign::Pipelined, PolbDesign::Parallel] {
                let cfg = TranslationConfig {
                    polb_entries: size,
                    ..TranslationConfig::for_design(design)
                };
                let r = simulate(&opt, Core::InOrder, cfg);
                let size_label = size.to_string();
                r.publish(&[
                    ("artifact", "fig11"),
                    ("bench", bench.abbrev()),
                    ("polb_size", &size_label),
                    (
                        "design",
                        match design {
                            PolbDesign::Pipelined => "pipelined",
                            PolbDesign::Parallel => "parallel",
                        },
                    ),
                ]);
                let speedup = base_cycles as f64 / r.cycles.max(1) as f64;
                let miss = r.translation.polb.miss_rate();
                match design {
                    PolbDesign::Pipelined => {
                        row.pipelined.push(speedup);
                        row.pipe_miss.push(miss);
                    }
                    PolbDesign::Parallel => {
                        row.parallel.push(speedup);
                        row.par_miss.push(miss);
                    }
                }
            }
        }
        row
    })
}

/// Renders Figure 11 (speedups).
pub fn fig11_text(rows: &[Fig11Row]) -> String {
    let mut header: Vec<String> = vec!["Bench".into(), "Design".into()];
    for s in POLB_SIZES {
        header.push(if s == 0 { "none".into() } else { s.to_string() });
    }
    let hdr: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = TextTable::new(
        "Figure 11 — speedup vs POLB size (RANDOM, NTX, in-order)",
        &hdr,
    );
    for r in rows {
        let mut cells = vec![r.bench.clone(), "Pipelined".into()];
        cells.extend(r.pipelined.iter().map(|&x| fx(x)));
        t.row(cells);
        let mut cells = vec![r.bench.clone(), "Parallel".into()];
        cells.extend(r.parallel.iter().map(|&x| fx(x)));
        t.row(cells);
    }
    t.render()
}

/// Renders Table 9 (miss rates). Size 0 ("no POLB") misses by definition
/// and is omitted, as in the paper.
pub fn table9_text(rows: &[Fig11Row]) -> String {
    let sizes = &POLB_SIZES[1..];
    let mut header: Vec<String> = vec!["Bench".into()];
    for s in sizes {
        header.push(format!("Pipe {s}"));
    }
    for s in sizes {
        header.push(format!("Par {s}"));
    }
    let hdr: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = TextTable::new("Table 9 — POLB miss rates vs size (OPT_NTX, RANDOM)", &hdr);
    for r in rows {
        let mut cells = vec![r.bench.clone()];
        cells.extend(r.pipe_miss[1..].iter().map(|&x| pct(x)));
        cells.extend(r.par_miss[1..].iter().map(|&x| pct(x)));
        t.row(cells);
    }
    t.render()
}

// ---------------------------------------------------------------------
// Figure 12 — sensitivity to the POT-walk penalty (EACH pattern)
// ---------------------------------------------------------------------

/// POT-walk latencies swept by Figure 12 (`None` = ideal, no penalty).
pub const POT_LATENCIES: [Option<u64>; 6] =
    [None, Some(10), Some(30), Some(100), Some(300), Some(500)];

/// One benchmark's POT-walk sweep (in-order, Pipelined, EACH pattern).
#[derive(Clone, Debug, Serialize)]
pub struct Fig12Row {
    /// Benchmark abbreviation.
    pub bench: String,
    /// OPT/BASE speedup per latency point (ideal, 10, 30, 100, 300, 500).
    pub speedups: Vec<f64>,
}

/// Runs Figure 12.
pub fn fig12(scale: Scale) -> Vec<Fig12Row> {
    parallel_map(Micro::ALL.to_vec(), default_workers(), |bench| {
        let base = run_micro(bench, Pattern::Each, ExpConfig::Base, scale);
        let opt = run_micro(bench, Pattern::Each, ExpConfig::Opt, scale);
        let base_cycles = simulate(&base, Core::InOrder, pipelined()).cycles;
        let speedups = POT_LATENCIES
            .iter()
            .map(|&lat| {
                let cfg = match lat {
                    None => ideal(),
                    Some(l) => TranslationConfig {
                        pot_walk_cycles: l,
                        ..pipelined()
                    },
                };
                let r = simulate(&opt, Core::InOrder, cfg);
                let lat_label = lat.map_or("ideal".to_owned(), |l| l.to_string());
                r.publish(&[
                    ("artifact", "fig12"),
                    ("bench", bench.abbrev()),
                    ("pot_latency", &lat_label),
                ]);
                base_cycles as f64 / r.cycles.max(1) as f64
            })
            .collect();
        Fig12Row {
            bench: bench.abbrev().to_owned(),
            speedups,
        }
    })
}

/// Renders Figure 12.
pub fn fig12_text(rows: &[Fig12Row]) -> String {
    let mut t = TextTable::new(
        "Figure 12 — speedup vs POT-walk penalty (EACH, in-order, Pipelined)",
        &["Bench", "ideal", "10cy", "30cy", "100cy", "300cy", "500cy"],
    );
    for r in rows {
        let mut cells = vec![r.bench.clone()];
        cells.extend(r.speedups.iter().map(|&x| fx(x)));
        t.row(cells);
    }
    t.render()
}

// ---------------------------------------------------------------------
// Seed sensitivity — a reproduction-robustness study (not in the paper)
// ---------------------------------------------------------------------

/// The RANDOM-pattern headline under one alternative seeding of keys,
/// ASLR layout, and branch outcomes.
#[derive(Clone, Debug, Serialize)]
pub struct SeedRow {
    /// Seed salt (0 = the seeds every other experiment uses).
    pub salt: u64,
    /// Per-benchmark in-order Pipelined speedups (Table 8 row order).
    pub speedups: Vec<f64>,
    /// Geomean across the six microbenchmarks.
    pub geomean: f64,
}

/// Re-runs the Figure 9(a) RANDOM headline under `n_seeds` different
/// seedings. The paper reports single runs; this quantifies how much the
/// headline moves with the random inputs.
pub fn seeds(scale: Scale, n_seeds: u64) -> Vec<SeedRow> {
    let salts: Vec<u64> = (0..n_seeds).collect();
    parallel_map(salts, default_workers(), |salt| {
        let speedups: Vec<f64> = Micro::ALL
            .iter()
            .map(|&bench| {
                let base =
                    run_micro_seeded(bench, Pattern::Random, ExpConfig::Base, scale, salt, |_| {});
                let opt =
                    run_micro_seeded(bench, Pattern::Random, ExpConfig::Opt, scale, salt, |_| {});
                simulate(&base, Core::InOrder, pipelined()).cycles as f64
                    / simulate(&opt, Core::InOrder, pipelined()).cycles.max(1) as f64
            })
            .collect();
        SeedRow {
            salt,
            geomean: geomean(&speedups),
            speedups,
        }
    })
}

/// Renders the seed study.
pub fn seeds_text(rows: &[SeedRow]) -> String {
    let mut header: Vec<String> = vec!["Seed".into()];
    header.extend(Micro::ALL.iter().map(|b| b.abbrev().to_owned()));
    header.push("GeoMean".into());
    let hdr: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = TextTable::new(
        "Seed sensitivity — Fig 9(a) RANDOM headline across seeds",
        &hdr,
    );
    for r in rows {
        let mut cells = vec![r.salt.to_string()];
        cells.extend(r.speedups.iter().map(|&x| fx(x)));
        cells.push(fx(r.geomean));
        t.row(cells);
    }
    let gms: Vec<f64> = rows.iter().map(|r| r.geomean).collect();
    let (lo, hi) = gms
        .iter()
        .fold((f64::MAX, f64::MIN), |(l, h), &g| (l.min(g), h.max(g)));
    let mut cells = vec!["range".to_owned()];
    cells.extend(std::iter::repeat_n("-".to_owned(), Micro::ALL.len()));
    cells.push(format!("{}..{}", fx(lo), fx(hi)));
    t.row(cells);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The quick-scale experiment suite is exercised end-to-end by the
    // integration tests in `tests/`; here we keep one cheap sanity check
    // per composite helper.

    #[test]
    fn seed_study_is_stable() {
        let rows = seeds(Scale::Quick, 3);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.geomean > 1.2, "seed {}: {:?}", r.salt, r.speedups);
        }
        let gms: Vec<f64> = rows.iter().map(|r| r.geomean).collect();
        let spread = gms.iter().cloned().fold(f64::MIN, f64::max)
            - gms.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 0.8, "headline too seed-sensitive: {gms:?}");
    }

    #[test]
    fn table2_shape() {
        let rows = table2(Scale::Quick);
        assert_eq!(rows.len(), 7, "6 benches + GeoMean");
        let gm = rows.last().unwrap();
        assert!(gm.insns_all < gm.insns_each, "EACH translations cost more");
        assert!(gm.miss_each > 0.3, "EACH predictor misses a lot");
        let text = table2_text(&rows);
        assert!(text.contains("GeoMean"));
    }

    #[test]
    fn fig12_is_monotonic_in_latency() {
        let rows = fig12(Scale::Quick);
        for r in &rows {
            assert_eq!(r.speedups.len(), POT_LATENCIES.len());
            for w in r.speedups.windows(2) {
                assert!(
                    w[1] <= w[0] * 1.02,
                    "{}: higher POT latency should not speed things up: {:?}",
                    r.bench,
                    r.speedups
                );
            }
        }
    }
}

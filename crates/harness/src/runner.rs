//! Workload execution + simulation plumbing shared by all experiments.

use std::sync::atomic::{AtomicUsize, Ordering};

use poat_core::{PolbDesign, TranslationConfig};
use poat_pmem::{
    ChunkBounds, MachineState, Runtime, RuntimeConfig, Trace, TraceSummary, XlatStats,
};
use poat_sim::{
    simulate_inorder, simulate_inorder_ops_warm, simulate_ooo, simulate_ooo_ops_warm, SimConfig,
    SimResult,
};
use poat_workloads::{ExpConfig, Micro, Pattern, Tpcc, TpccConfig, TpccPattern};

/// Scale knob for every experiment: `full` reproduces the paper's exact
/// workload sizes; `quick` shrinks operation counts (~10×) and the TPC-C
/// database so the whole suite runs in seconds (used by tests and smoke
/// runs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Paper-exact workload sizes (Table 5; TPC-C at 10% cardinality with
    /// the full 1000 transactions — see EXPERIMENTS.md).
    Full,
    /// ~10× smaller microbenchmarks, ~100× smaller TPC-C.
    Quick,
}

impl Scale {
    /// Operation count for a microbenchmark at this scale.
    pub fn ops(self, bench: Micro) -> usize {
        match self {
            Scale::Full => bench.ops(),
            Scale::Quick => (bench.ops() / 10).max(50),
        }
    }

    /// TPC-C cardinality scale factor.
    pub fn tpcc_scale(self) -> f64 {
        match self {
            // 10% of spec cardinality: trees reach their steady-state
            // depth, per-transaction work matches the full database, and
            // population stays tractable in simulation (see EXPERIMENTS.md).
            Scale::Full => 0.1,
            Scale::Quick => 0.005,
        }
    }

    /// TPC-C transaction count.
    pub fn tpcc_transactions(self) -> u64 {
        match self {
            Scale::Full => 1000,
            Scale::Quick => 50,
        }
    }

    /// The scale's name as it appears in run manifests and CLI flags
    /// (`--scale quick`).
    pub fn label(self) -> &'static str {
        match self {
            Scale::Full => "full",
            Scale::Quick => "quick",
        }
    }
}

/// The product of executing one workload natively: its dynamic trace and
/// the machine state the timing models replay against.
#[derive(Debug)]
pub struct WorkloadRun {
    /// Human-readable `bench/pattern/config` identity of the run; used as
    /// the `run` label scoping this run's span series (docs/METRICS.md).
    pub label: String,
    /// The dynamic instruction trace.
    pub trace: Trace,
    /// POT + page-table state for the simulator.
    pub state: MachineState,
    /// Software-translation counters (meaningful for BASE runs).
    pub xlat: XlatStats,
    /// Trace-wide instruction/op counts.
    pub summary: TraceSummary,
    /// Pools the workload created.
    pub pools: u64,
}

/// Deterministic per-(bench, pattern, config) seed, so BASE and OPT runs
/// of the same workload see identical keys and pool layouts.
fn seed_for(bench: Micro, pattern: Pattern) -> u64 {
    let b = bench.abbrev().bytes().fold(0u64, |a, c| a * 31 + c as u64);
    let p = match pattern {
        Pattern::All => 1,
        Pattern::Each => 2,
        Pattern::Random => 3,
    };
    b * 1000 + p
}

/// Runs a microbenchmark natively and captures its trace.
///
/// # Panics
///
/// Panics on runtime errors — experiment inputs are fixed, so failures
/// are bugs, not recoverable conditions.
pub fn run_micro(bench: Micro, pattern: Pattern, config: ExpConfig, scale: Scale) -> WorkloadRun {
    run_micro_custom(bench, pattern, config, scale, |_| {})
}

/// [`run_micro`] with a hook to tweak the runtime configuration (used by
/// the ablation experiments, e.g. disabling the last-value predictor).
///
/// # Panics
///
/// Panics on runtime errors (see [`run_micro`]).
pub fn run_micro_custom(
    bench: Micro,
    pattern: Pattern,
    config: ExpConfig,
    scale: Scale,
    tweak: impl FnOnce(&mut RuntimeConfig),
) -> WorkloadRun {
    run_micro_seeded(bench, pattern, config, scale, 0, tweak)
}

/// [`run_micro_custom`] with a seed salt: a non-zero salt re-randomizes
/// the workload keys, ASLR layout, and branch outcomes, for studying
/// sensitivity of the results to the random inputs.
///
/// # Panics
///
/// Panics on runtime errors (see [`run_micro`]).
pub fn run_micro_seeded(
    bench: Micro,
    pattern: Pattern,
    config: ExpConfig,
    scale: Scale,
    salt: u64,
    tweak: impl FnOnce(&mut RuntimeConfig),
) -> WorkloadRun {
    let seed = seed_for(bench, pattern) ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut cfg = config.runtime_config(seed);
    tweak(&mut cfg);
    let mut rt = Runtime::new(cfg);
    let label = format!("{bench}/{pattern}/{config}");
    let _scope = poat_telemetry::run_scope(&label);
    let exec_prof = poat_telemetry::profile::scope(poat_telemetry::PHASE_WORKLOAD_EXEC);
    let exec_span = poat_telemetry::global().span(poat_telemetry::PHASE_WORKLOAD_EXEC);
    let report = bench
        .run_ops(&mut rt, pattern, seed, scale.ops(bench))
        .unwrap_or_else(|e| panic!("{bench}/{pattern}/{config}: {e}"));
    drop(exec_span);
    drop(exec_prof);
    let trace = rt.take_trace();
    let run = WorkloadRun {
        label,
        summary: trace.summary(),
        state: rt.machine_state(),
        xlat: rt.xlat_stats(),
        pools: report.pools,
        trace,
    };
    publish_workload(&run);
    run
}

/// Feeds a finished workload run into the aggregate `harness.workload.*`
/// and `harness.trace.*` counters the harness uses for per-experiment
/// throughput and trace-footprint numbers.
fn publish_workload(run: &WorkloadRun) {
    let registry = poat_telemetry::global();
    registry.counter("harness.workload.runs").inc();
    registry
        .counter("harness.workload.instructions")
        .add(run.summary.instructions);
    registry
        .counter("harness.trace.ops")
        .add(run.trace.len() as u64);
    registry
        .counter("harness.trace.bytes")
        .add(run.trace.encoded_bytes() as u64);
}

/// Runs TPC-C natively. Population traffic is excluded from the trace;
/// the 1000-transaction phase is what the paper measures.
///
/// # Panics
///
/// Panics on runtime errors (see [`run_micro`]).
pub fn run_tpcc(pattern: TpccPattern, config: ExpConfig, scale: Scale) -> WorkloadRun {
    let seed = 0x7C0C + matches!(pattern, TpccPattern::Each) as u64;
    let mut rt = Runtime::new(config.runtime_config(seed));
    let cfg = TpccConfig {
        scale: scale.tpcc_scale(),
        seed,
    };
    let mut tpcc = Tpcc::setup(&mut rt, pattern, cfg)
        .unwrap_or_else(|e| panic!("tpcc setup {pattern}/{config}: {e}"));
    rt.take_trace(); // measure transactions only
                     // Reset translation counters so Table 2-style stats cover the
                     // measured phase only.
    let setup_xlat = rt.xlat_stats();
    let label = format!("TPCC/{pattern}/{config}");
    let _scope = poat_telemetry::run_scope(&label);
    let exec_prof = poat_telemetry::profile::scope(poat_telemetry::PHASE_WORKLOAD_EXEC);
    let exec_span = poat_telemetry::global().span(poat_telemetry::PHASE_WORKLOAD_EXEC);
    tpcc.run(&mut rt, scale.tpcc_transactions())
        .unwrap_or_else(|e| panic!("tpcc run {pattern}/{config}: {e}"));
    drop(exec_span);
    drop(exec_prof);
    let trace = rt.take_trace();
    let mut xlat = rt.xlat_stats();
    xlat.calls -= setup_xlat.calls;
    xlat.instructions -= setup_xlat.instructions;
    xlat.predictor_hits -= setup_xlat.predictor_hits;
    xlat.predictor_misses -= setup_xlat.predictor_misses;
    xlat.probes -= setup_xlat.probes;
    let run = WorkloadRun {
        label,
        summary: trace.summary(),
        state: rt.machine_state(),
        xlat,
        pools: rt.open_pools() as u64,
        trace,
    };
    publish_workload(&run);
    run
}

/// Which core model to replay on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Core {
    /// Five-stage in-order pipeline.
    InOrder,
    /// 4-wide out-of-order (ROB model).
    OutOfOrder,
}

/// Replays a run on the given core with the given translation hardware.
///
/// # Panics
///
/// Panics if the combination is unsupported (Parallel on out-of-order).
pub fn simulate(run: &WorkloadRun, core: Core, translation: TranslationConfig) -> SimResult {
    simulate_with(run, core, SimConfig::with_translation(translation))
}

/// [`simulate`] with a full simulator configuration (cache/prefetch
/// knobs for ablations).
///
/// Traces of at least [`SHARD_MIN_OPS`] ops are replayed sharded (see
/// [`simulate_sharded`]); smaller traces — everything at quick scale —
/// take the whole-trace path, whose results are bit-identical to every
/// earlier release.
///
/// # Panics
///
/// Panics if the combination is unsupported (Parallel on out-of-order).
pub fn simulate_with(run: &WorkloadRun, core: Core, cfg: SimConfig) -> SimResult {
    // Simulations fan out over a thread pool; scoping by the run's label
    // keeps this run's span samples out of every other run's
    // distribution (the unscoped series still aggregates all of them).
    let _scope = poat_telemetry::run_scope(&run.label);
    let _sim_prof = poat_telemetry::profile::scope(poat_telemetry::PHASE_POLB_SIM);
    let _sim_span = poat_telemetry::global().span(poat_telemetry::PHASE_POLB_SIM);
    if run.trace.len() >= SHARD_MIN_OPS {
        return simulate_sharded(run, core, &cfg);
    }
    match core {
        Core::InOrder => simulate_inorder(&run.trace, &run.state, &cfg),
        Core::OutOfOrder => simulate_ooo(&run.trace, &run.state, &cfg),
    }
    .expect("unsupported core/design combination")
}

/// Ops per shard of a sharded replay. Fixed — never derived from the
/// worker count — so the shard geometry, and therefore the merged
/// result, is identical at any `--workers` width. Sized so the one-chunk
/// functional warmup (see [`warm_shard_span`]) amortizes over a long
/// measured window: smaller shards expose more boundaries and more
/// residual cold-structure distortion.
pub const SHARD_OPS: usize = 1 << 19;

/// Minimum trace length (ops) before [`simulate_with`] shards the
/// replay. Quick-scale traces sit below this — the largest, TPC-C
/// BASE, is ~270 K ops — and keep their historical whole-trace
/// results; full-scale TPC-C (millions of ops) and the full-scale
/// microbenchmarks (~860 K+) sit above it.
pub const SHARD_MIN_OPS: usize = 1 << 19;

/// The trace span shard `k` replays, plus its warmup length in ops.
///
/// Shard `k > 0` replays its own chunk *prefixed by the whole previous
/// chunk* of functional warmup: the warmup ops run through the full
/// detailed model to fill caches/TLB/POLB, the simulator snapshots
/// every counter at the warmup/measure boundary, and the shard reports
/// only the advance past the snapshot ([`SimResult::delta_since`]).
/// Shard `0` has no predecessor and replays unwarmed. Chunks are
/// contiguous in the encoded columns, so the two-chunk span is itself a
/// well-formed [`ChunkBounds`].
pub fn warm_shard_span(bounds: &[ChunkBounds], k: usize) -> (ChunkBounds, usize) {
    if k == 0 {
        return (bounds[0], 0);
    }
    let (prev, cur) = (bounds[k - 1], bounds[k]);
    let span = ChunkBounds {
        first_op: prev.first_op,
        ops: prev.ops + cur.ops,
        payload_off: prev.payload_off,
        payload_len: cur.payload_off + cur.payload_len - prev.payload_off,
        prev_va: prev.prev_va,
        prev_oid: prev.prev_oid,
    };
    (span, prev.ops)
}

/// Replays one run split into [`SHARD_OPS`]-op chunk-aligned shards
/// across the worker pool, merging the per-shard [`SimResult`]s in
/// shard order with [`SimResult::absorb`].
///
/// Each shard warms up on the chunk preceding it ([`warm_shard_span`])
/// and measures only its own chunk, with dependency edges into ops
/// before its span treated as ready — the standard sampled-warmup
/// approximation: the warmup window bounds how much history a shard
/// sees, so sharded cycle counts differ slightly (pessimistically) from
/// whole-trace replay, but are a pure function of the trace and
/// [`SHARD_OPS`], never of the pool width. Publishes the
/// `harness.shard.*` counters (docs/METRICS.md).
///
/// # Panics
///
/// Panics if the combination is unsupported (Parallel on out-of-order).
pub fn simulate_sharded(run: &WorkloadRun, core: Core, cfg: &SimConfig) -> SimResult {
    let bounds = run.trace.chunk_bounds(SHARD_OPS);
    if bounds.len() < 2 {
        return match core {
            Core::InOrder => simulate_inorder(&run.trace, &run.state, cfg),
            Core::OutOfOrder => simulate_ooo(&run.trace, &run.state, cfg),
        }
        .expect("unsupported core/design combination");
    }
    let registry = poat_telemetry::global();
    registry.counter("harness.shard.replays").inc();
    registry
        .counter("harness.shard.shards")
        .add(bounds.len() as u64);
    registry
        .counter("harness.shard.ops")
        .add(run.trace.len() as u64);
    let shards: Vec<(ChunkBounds, usize)> = (0..bounds.len())
        .map(|k| warm_shard_span(&bounds, k))
        .collect();
    // The closure returns the Result so an unsupported combination
    // panics on the merge below (in this thread), not inside a worker.
    let results = parallel_map_labeled("shard", shards, default_workers(), |(span, warm)| {
        let slice = run.trace.slice(&span);
        match core {
            Core::InOrder => simulate_inorder_ops_warm(slice.ops(), warm, &run.state, cfg),
            Core::OutOfOrder => simulate_ooo_ops_warm(slice.ops(), warm, &run.state, cfg),
        }
    });
    let mut total = SimResult::default();
    for r in &results {
        total.absorb(r.as_ref().expect("unsupported core/design combination"));
    }
    total
}

/// The three translation configurations Figure 9 compares.
pub fn pipelined() -> TranslationConfig {
    TranslationConfig::for_design(PolbDesign::Pipelined)
}

/// Table 4 Parallel-design configuration.
pub fn parallel() -> TranslationConfig {
    TranslationConfig::for_design(PolbDesign::Parallel)
}

/// Zero-overhead translation (the red dots of Figure 9).
pub fn ideal() -> TranslationConfig {
    TranslationConfig::default().idealized()
}

/// Runs tasks on a small worker pool, preserving input order of results.
///
/// Parallelism is still bounded — at most `max_workers` tasks are live at
/// once and each returns only its small result — but the compact trace
/// encoding (a few bytes per op instead of the old 40 B enum) leaves the
/// matrix CPU-bound rather than memory-bound at this width.
pub fn parallel_map<T, R, F>(inputs: Vec<T>, max_workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_labeled("map", inputs, max_workers, f)
}

/// [`parallel_map`] with an explicit pool label. Pools nest — the
/// experiment matrix pool dispatches runs whose sharded replays each
/// open their own pool — and the label keeps each pool's
/// `pool.workers.active{pool=...}` / `pool.queue.depth{pool=...}`
/// gauges and HUD lines apart (docs/METRICS.md).
pub fn parallel_map_labeled<T, R, F>(
    label: &str,
    inputs: Vec<T>,
    max_workers: usize,
    f: F,
) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    use std::collections::VecDeque;
    use std::sync::Mutex;

    let n = inputs.len();
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(inputs.into_iter().enumerate().collect());
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let results_mutex = Mutex::new(&mut results);
    let workers = max_workers.max(1).min(n.max(1));
    let monitor = crate::hud::PoolMonitor::new(label, workers, n as u64);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let (queue, results_mutex, monitor, f) = (&queue, &results_mutex, &monitor, &f);
                s.spawn(move || loop {
                    let next = queue.lock().unwrap().pop_front();
                    let Some((i, item)) = next else { break };
                    let task_started = monitor.begin(w);
                    let r = f(item);
                    monitor.end(w, task_started);
                    results_mutex.lock().unwrap()[i] = Some(r);
                })
            })
            .collect();
        if crate::hud::interval().is_some() {
            s.spawn(|| monitor.run_watchdog());
        }
        for h in handles {
            let _ = h.join();
        }
        monitor.finish();
    });
    results
        .into_iter()
        .map(|r| r.expect("worker completed every task"))
        .collect()
}

/// `repro --workers N` override; 0 means "not set, use the host width".
static WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces every subsequent worker pool — the experiment matrix and the
/// sharded-replay pools alike — to `workers` threads (`None` restores
/// the host-derived default). Pool width never affects results (shard
/// geometry and merge order are fixed), only wall-clock; the
/// determinism test replays the same config at several widths through
/// this knob.
pub fn set_worker_override(workers: Option<usize>) {
    WORKER_OVERRIDE.store(workers.unwrap_or(0), Ordering::Relaxed);
}

/// Default worker count: physical parallelism, loosely capped to bound
/// memory (or the [`set_worker_override`] width when one is set). The
/// cap was 8 when traces were ~40 B/op enum vectors; the compact
/// encoding cut per-run footprint ~3-6×, so the pool now scales to
/// wide machines.
pub fn default_workers() -> usize {
    match WORKER_OVERRIDE.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(24),
        n => n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_and_opt_runs_differ_only_in_codegen() {
        let base = run_micro(Micro::Ll, Pattern::All, ExpConfig::Base, Scale::Quick);
        let opt = run_micro(Micro::Ll, Pattern::All, ExpConfig::Opt, Scale::Quick);
        assert!(base.summary.nvloads == 0 && opt.summary.nvloads > 0);
        assert!(base.summary.instructions > opt.summary.instructions);
        assert_eq!(base.pools, opt.pools, "same workload shape");
    }

    #[test]
    fn simulate_runs_all_supported_combos() {
        let opt = run_micro(Micro::Bst, Pattern::Random, ExpConfig::Opt, Scale::Quick);
        let a = simulate(&opt, Core::InOrder, pipelined());
        let b = simulate(&opt, Core::InOrder, parallel());
        let c = simulate(&opt, Core::InOrder, ideal());
        let d = simulate(&opt, Core::OutOfOrder, pipelined());
        assert!(c.cycles <= a.cycles && c.cycles <= b.cycles);
        assert!(d.cycles < a.cycles, "OoO is faster than in-order");
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn parallel_on_ooo_panics() {
        let opt = run_micro(Micro::Ll, Pattern::All, ExpConfig::Opt, Scale::Quick);
        let _ = simulate(&opt, Core::OutOfOrder, parallel());
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..50).collect(), 4, |x: i32| x * 2);
        assert_eq!(out, (0..50).map(|x| x * 2).collect::<Vec<_>>());
    }

    /// A synthetic run big enough to trip [`SHARD_MIN_OPS`]: a plain
    /// load/store/exec mix over a spread of pages, wrapped around the
    /// machine state of a real (quick) run.
    fn big_synthetic_run() -> WorkloadRun {
        use poat_core::VirtAddr;
        use poat_pmem::TraceOp;

        let seed_run = run_micro(Micro::Ll, Pattern::All, ExpConfig::Opt, Scale::Quick);
        let mut trace = Trace::new();
        let mut x: u64 = 0xC0FFEE;
        for i in 0..(SHARD_MIN_OPS as u64 + 10_000) {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let va = VirtAddr::new((x % (1 << 28)) & !0x7);
            match i % 5 {
                0 | 1 => trace.push(TraceOp::Load { va, dep: None }),
                2 => trace.push(TraceOp::Store { va, dep: None }),
                3 => trace.push(TraceOp::Exec {
                    n: 1 + (x % 4) as u32,
                }),
                _ => trace.push(TraceOp::Load {
                    va,
                    // A backref that regularly crosses shard boundaries,
                    // so rebasing is exercised.
                    dep: Some(i.saturating_sub(x % 100_000)),
                }),
            };
        }
        WorkloadRun {
            label: "synthetic/big".to_string(),
            summary: trace.summary(),
            state: seed_run.state.clone(),
            xlat: seed_run.xlat,
            pools: seed_run.pools,
            trace,
        }
    }

    #[test]
    fn sharded_replay_is_deterministic_across_worker_widths() {
        let run = big_synthetic_run();
        assert!(
            run.trace.len() >= SHARD_MIN_OPS,
            "must take the sharded path"
        );
        let mut results = Vec::new();
        for width in [1usize, 8, 24] {
            set_worker_override(Some(width));
            results.push(simulate(&run, Core::InOrder, pipelined()));
        }
        set_worker_override(None);
        assert_eq!(results[0], results[1], "1 vs 8 workers");
        assert_eq!(results[0], results[2], "1 vs 24 workers");
    }

    #[test]
    fn sharded_replay_equals_manual_shard_merge() {
        let run = big_synthetic_run();
        let cfg = SimConfig::with_translation(pipelined());
        let bounds = run.trace.chunk_bounds(SHARD_OPS);
        assert!(bounds.len() >= 2, "must split into several shards");
        let mut manual = SimResult::default();
        for k in 0..bounds.len() {
            let (span, warm) = warm_shard_span(&bounds, k);
            let shard =
                simulate_inorder_ops_warm(run.trace.slice(&span).ops(), warm, &run.state, &cfg)
                    .expect("in-order supports every design");
            manual.absorb(&shard);
        }
        assert_eq!(simulate_with(&run, Core::InOrder, cfg), manual);
    }

    #[test]
    fn warm_shard_spans_cover_the_trace_contiguously() {
        let run = big_synthetic_run();
        let bounds = run.trace.chunk_bounds(SHARD_OPS);
        assert!(bounds.len() >= 2);
        let mut measured = 0usize;
        for k in 0..bounds.len() {
            let (span, warm) = warm_shard_span(&bounds, k);
            // The measured window is exactly this shard's chunk.
            assert_eq!(span.first_op as usize + warm, bounds[k].first_op as usize);
            assert_eq!(span.ops - warm, bounds[k].ops);
            // The span decodes: warm ops + measured ops stream out.
            assert_eq!(run.trace.slice(&span).ops().count(), span.ops);
            measured += span.ops - warm;
        }
        assert_eq!(measured, run.trace.len());
    }

    #[test]
    fn tpcc_run_produces_trace() {
        let run = run_tpcc(TpccPattern::All, ExpConfig::Opt, Scale::Quick);
        assert!(run.summary.instructions > 0);
        assert!(run.summary.nvloads > 0);
    }
}

//! `repro` — regenerate the MICRO'17 tables and figures.
//!
//! ```text
//! repro <artifact> [--quick] [--json PATH] [--csv DIR] [--metrics PATH]
//!
//! artifacts: table2 | fig9a | fig9b | table8 | instrs | fig10
//!            | fig11 | table9 | fig12 | ablations | seeds | all
//! ```
//!
//! `--metrics PATH` writes the full telemetry snapshot (every counter,
//! gauge and histogram accumulated during the run, plus a run manifest)
//! as versioned JSON — see `docs/METRICS.md` for the schema.

use std::collections::BTreeMap;
use std::io::Write;
use std::time::Instant;

use poat_harness::{ablations, csv};
use poat_harness::experiments::{
    self, fig10_text, fig11_text, fig12_text, fig9a_text, fig9b_text, instrs_text, table2_text,
    table8_text, table9_text,
};
use poat_harness::Scale;

fn usage() -> ! {
    eprintln!(
        "usage: repro <table2|fig9a|fig9b|table8|instrs|fig10|fig11|table9|fig12|ablations|seeds|all> \
         [--quick] [--json PATH] [--csv DIR] [--metrics PATH]"
    );
    std::process::exit(2);
}

/// Runs one artifact block, publishing its wall-clock and simulated
/// instruction throughput as `harness.experiment.*{artifact=...}` gauges.
fn timed<R>(name: &str, f: impl FnOnce() -> R) -> R {
    let registry = poat_telemetry::global();
    let instructions = registry.counter("harness.workload.instructions");
    let before = instructions.get();
    let t0 = Instant::now();
    let out = f();
    let elapsed = t0.elapsed();
    let labels = [("artifact", name)];
    registry
        .gauge(&poat_telemetry::labeled("harness.experiment.wall_nanos", &labels))
        .set(elapsed.as_nanos() as u64);
    let delta = instructions.get().saturating_sub(before);
    if delta > 0 && elapsed.as_secs_f64() > 0.0 {
        registry
            .gauge(&poat_telemetry::labeled(
                "harness.experiment.instructions_per_sec",
                &labels,
            ))
            .set((delta as f64 / elapsed.as_secs_f64()) as u64);
    }
    out
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(artifact) = args.next() else { usage() };
    let mut scale = Scale::Full;
    let mut json_path: Option<String> = None;
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut metrics_path: Option<String> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => scale = Scale::Quick,
            "--json" => json_path = Some(args.next().unwrap_or_else(|| usage())),
            "--csv" => {
                let d = std::path::PathBuf::from(args.next().unwrap_or_else(|| usage()));
                std::fs::create_dir_all(&d).expect("create csv output directory");
                csv_dir = Some(d);
            }
            "--metrics" => metrics_path = Some(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }

    // Start from zeroed metrics so the snapshot describes exactly this run.
    poat_telemetry::global().reset();
    let started = Instant::now();
    let mut json: BTreeMap<String, serde_json::Value> = BTreeMap::new();

    let wants = |k: &str| artifact == k || artifact == "all";
    let mut matched = false;

    if wants("table2") {
        matched = true;
        let rows = timed("table2", || experiments::table2(scale));
        println!("{}", table2_text(&rows));
        if let Some(dir) = &csv_dir {
            csv::table2(dir, &rows).expect("write table2 csv");
        }
        json.insert("table2".into(), serde_json::to_value(&rows).expect("serialize"));
    }
    if wants("fig9a") || wants("fig9b") || wants("table8") || wants("instrs") {
        matched = true;
        let main = timed("main_matrix", || experiments::main_matrix(scale));
        if wants("fig9a") {
            println!("{}", fig9a_text(&main.fig9a));
        }
        if wants("fig9b") {
            println!("{}", fig9b_text(&main.fig9b));
        }
        if wants("table8") {
            println!("{}", table8_text(&main.table8));
        }
        if wants("instrs") {
            println!("{}", instrs_text(&main.instrs));
        }
        if let Some(dir) = &csv_dir {
            csv::main_results(dir, &main).expect("write fig9/table8 csvs");
        }
        json.insert("main".into(), serde_json::to_value(&main).expect("serialize"));
    }
    if wants("fig10") {
        matched = true;
        let rows = timed("fig10", || experiments::fig10(scale));
        println!("{}", fig10_text(&rows));
        if let Some(dir) = &csv_dir {
            csv::fig10(dir, &rows).expect("write fig10 csv");
        }
        json.insert("fig10".into(), serde_json::to_value(&rows).expect("serialize"));
    }
    if wants("fig11") || wants("table9") {
        matched = true;
        let rows = timed("fig11", || experiments::fig11(scale));
        if wants("fig11") {
            println!("{}", fig11_text(&rows));
        }
        if wants("table9") {
            println!("{}", table9_text(&rows));
        }
        if let Some(dir) = &csv_dir {
            csv::fig11(dir, &rows).expect("write fig11/table9 csvs");
        }
        json.insert("fig11".into(), serde_json::to_value(&rows).expect("serialize"));
    }
    if wants("fig12") {
        matched = true;
        let rows = timed("fig12", || experiments::fig12(scale));
        println!("{}", fig12_text(&rows));
        if let Some(dir) = &csv_dir {
            csv::fig12(dir, &rows).expect("write fig12 csv");
        }
        json.insert("fig12".into(), serde_json::to_value(&rows).expect("serialize"));
    }
    if wants("seeds") {
        matched = true;
        let rows = timed("seeds", || experiments::seeds(scale, 5));
        println!("{}", experiments::seeds_text(&rows));
        json.insert("seeds".into(), serde_json::to_value(&rows).expect("serialize"));
    }
    if wants("ablations") {
        matched = true;
        let r = timed("ablations", || ablations::all(scale));
        println!("{}", ablations::all_text(&r));
        if let Some(dir) = &csv_dir {
            csv::ablations(dir, &r).expect("write ablation csvs");
        }
        json.insert("ablations".into(), serde_json::to_value(&r).expect("serialize"));
    }
    if !matched {
        usage();
    }

    let scale_label = match scale {
        Scale::Full => "full",
        Scale::Quick => "quick",
    };
    let manifest = poat_telemetry::RunManifest::collect(&artifact, scale_label, started);

    if let Some(path) = json_path {
        json.insert(
            "manifest".into(),
            serde_json::to_value(&manifest).expect("serialize manifest"),
        );
        let mut f = std::fs::File::create(&path).expect("create json output");
        f.write_all(
            serde_json::to_string_pretty(&json)
                .expect("serialize results")
                .as_bytes(),
        )
        .expect("write json output");
        eprintln!("results written to {path}");
    }
    if let Some(path) = metrics_path {
        let snapshot = poat_telemetry::global().snapshot(manifest.clone());
        std::fs::write(&path, snapshot.to_json_string()).expect("write metrics snapshot");
        eprintln!("metrics snapshot written to {path}");
    }
    eprintln!(
        "[{artifact} @ {scale:?}] completed in {:.1}s",
        started.elapsed().as_secs_f64()
    );
}

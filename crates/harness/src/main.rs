// SPDX-License-Identifier: MIT OR Apache-2.0
//! `repro` — regenerate the MICRO'17 tables and figures.
//!
//! ```text
//! repro <artifact> [--quick] [--workers N] [--json PATH] [--csv DIR]
//!                  [--metrics PATH] [--trace PATH] [--trace-sample N]
//!                  [--timeline DIR] [--profile] [--flame PATH]
//!                  [--hud SECS] [--ledger PATH] [--no-ledger]
//! repro report [--ledger PATH] [--last N] [--metric NAME] [--diff A:B]
//!
//! artifacts: table2 | fig9a | fig9b | table8 | instrs | fig10
//!            | fig11 | table9 | fig12 | ablations | seeds | all
//! ```
//!
//! `--metrics PATH` writes the full telemetry snapshot (every counter,
//! gauge and histogram accumulated during the run, plus a run manifest)
//! as versioned JSON — see `docs/METRICS.md` for the schema. `--trace`
//! and `--timeline` enable event-level tracing — see `docs/TRACING.md`.
//! Every run also appends one record to the durable run ledger
//! (`repro report` queries it), `--profile`/`--flame` drive the
//! span-tree profiler, and `--hud` the worker-pool HUD — see
//! `docs/OBSERVABILITY.md`.

use std::collections::BTreeMap;
use std::time::Instant;

use poat_harness::artifact::write_artifact;
use poat_harness::experiments::{
    self, fig10_text, fig11_text, fig12_text, fig9a_text, fig9b_text, instrs_text, table2_text,
    table8_text, table9_text,
};
use poat_harness::report::TextTable;
use poat_harness::Scale;
use poat_harness::{ablations, csv, jobs, serve, timeline};
use poat_telemetry::events;

const USAGE: &str = "usage: repro <table2|fig9a|fig9b|table8|instrs|fig10|fig11|table9|fig12|ablations|seeds|all> \
[--quick] [--workers N] [--json PATH] [--csv DIR] [--metrics PATH] [--trace PATH] [--trace-sample N] [--timeline DIR] \
[--profile] [--flame PATH] [--hud SECS] [--ledger PATH] [--no-ledger]\n       \
repro report [--ledger PATH] [--last N] [--metric NAME] [--command FILTER] [--diff A:B]\n       \
repro crash-sweep [--scale quick|full] [--workload BENCH:PATTERN] [--inject clean|torn|drop-clwb|all] \
[--max-points N] [--replay POINT:SEED] [--metrics PATH] [--trace PATH] [--trace-sample N] \
[--ledger PATH] [--no-ledger]\n       \
repro trace-roundtrip [--scale quick|full] [--workload BENCH:PATTERN] [--dir DIR]\n       \
repro serve [--spool DIR] [--catalog PATH] [--poll-ms N] [--drain] [--idle-exit SECS] [--workers N]\n       \
repro submit WORKLOAD DESIGN SCALE [--spool DIR]\n       \
repro jobs [--spool DIR] [--catalog PATH]\n       \
repro catalog query [--catalog PATH] [--workload W] [--design D] [--scale S] [--status S] [--metric NAME]";

/// Where runs land unless `--ledger`/`--no-ledger` says otherwise.
const DEFAULT_LEDGER: &str = ".poat/ledger.poatlgr";
/// Where `repro serve`/`submit`/`jobs` spool job specs by default.
const DEFAULT_SPOOL: &str = ".poat/spool";
/// Where the serve-mode run catalog lives by default.
const DEFAULT_CATALOG: &str = ".poat/catalog.poatcat";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn help() -> ! {
    println!(
        "{USAGE}\n\n\
         Regenerates the paper's tables and figures (docs/EXPERIMENTS.md).\n\n\
         artifacts:\n  \
         table2     oid_direct instruction counts & predictor miss rate\n  \
         fig9a      in-order OPT/BASE speedups (Pipelined, Parallel, ideal)\n  \
         fig9b      out-of-order speedups (Pipelined, ideal)\n  \
         table8     POLB miss rates\n  \
         instrs     dynamic-instruction reduction\n  \
         fig10      _NTX speedups (durability overhead removed)\n  \
         fig11      POLB-size sensitivity\n  \
         table9     POLB miss rates across sizes\n  \
         fig12      POT-walk-penalty sensitivity\n  \
         ablations  design-choice studies\n  \
         seeds      seed-sensitivity study\n  \
         all        everything above\n\n\
         crash-sweep (EXPERIMENTS.md):\n  \
         crashes each workload at every persist boundary, recovers, and\n  \
         verifies the recovery invariants; non-zero exit on any violation.\n  \
         --scale quick|full       workload sizing (default: quick)\n  \
         --workload BENCH:PATTERN sweep one workload only (e.g. LL:ALL)\n  \
         --inject MODE            clean | torn | drop-clwb | all\n                           \
         (default: clean+torn; drop-clwb is the negative control)\n  \
         --max-points N           evenly-spaced sample of N points per workload\n  \
         --replay POINT:SEED      re-execute one crash point deterministically\n                           \
         (requires --workload; combine with --trace)\n\n\
         report (docs/OBSERVABILITY.md):\n  \
         queries the durable run ledger; every repro/bench run appends\n  \
         one record (manifest, counters, gauges, histogram summaries).\n  \
         --ledger PATH            ledger file (default: .poat/ledger.poatlgr)\n  \
         --last N                 only the newest N records\n  \
         --command FILTER         only records whose command contains FILTER\n  \
         --metric NAME            print NAME per record (histograms as\n                           \
         name:p50/p90/p99/mean/count/sum/max) and\n                           \
         the delta between the two newest records\n  \
         --diff A:B               diff two records (run ids or seq numbers)\n\n\
         trace-roundtrip:\n  \
         records workload traces, saves each to disk, loads it back, and\n  \
         replays both copies on both core models; non-zero exit if any\n  \
         SimResult differs or the encoding exceeds its bytes-per-op budget.\n  \
         --scale quick|full       workload sizing (default: quick)\n  \
         --workload BENCH:PATTERN check one workload only (default: a spread)\n  \
         --dir DIR                where to write the .poattrc files\n                           \
         (default: a temp directory, removed afterwards)\n\n\
         serve mode (docs/OBSERVABILITY.md):\n  \
         serve    watch the spool, execute submitted jobs on the worker\n           \
         pool, and record every lifecycle event in the durable\n           \
         run catalog (POATCAT1; survives restarts and crashes)\n  \
         submit   enqueue one run: WORKLOAD (BENCH:PATTERN, e.g. LL:ALL),\n           \
         DESIGN (pipelined|parallel|ideal), SCALE (quick|full)\n  \
         jobs     spool depth + every catalog job + a summary line\n  \
         catalog query  filter historical jobs; --metric NAME projects\n           \
         one sim.result.* value per job\n  \
         --spool DIR              job spool (default: .poat/spool)\n  \
         --catalog PATH           catalog file (default: .poat/catalog.poatcat)\n  \
         --poll-ms N              idle poll interval (default: 200)\n  \
         --drain                  exit once the spool is empty\n  \
         --idle-exit SECS         exit after SECS without new work\n  \
         --workload/--design/--scale/--status  query filters (exact match)\n\n\
         options:\n  \
         --quick            ~10x smaller workloads (smoke-test scale)\n  \
         --workers N        worker-pool width for the experiment matrix and\n                     \
         sharded full-scale replay (default: host cores,\n                     \
         capped at 24; results are identical at any width)\n  \
         --json PATH        write every artifact's rows as JSON\n  \
         --csv DIR          write per-artifact CSV files into DIR\n  \
         --metrics PATH     write the telemetry snapshot (docs/METRICS.md)\n  \
         --trace PATH       record translation events; write a Chrome Trace\n                     \
         Format JSON (load in Perfetto; docs/TRACING.md)\n  \
         --trace-sample N   trace every Nth access only (default: all)\n  \
         --timeline DIR     per-workload windowed timelines as CSV into DIR\n  \
         --profile          span-tree profiler: per-phase self-time table\n                     \
         (sampled per --trace-sample; docs/OBSERVABILITY.md)\n  \
         --flame PATH       write a collapsed-stack flamegraph (inferno\n                     \
         format; implies --profile)\n  \
         --hud SECS         live worker-pool HUD: a progress line every\n                     \
         SECS seconds plus the stall watchdog\n  \
         --ledger PATH      append this run's record to the ledger at PATH\n                     \
         (default: .poat/ledger.poatlgr; see `repro report`)\n  \
         --no-ledger        skip the ledger append\n  \
         -h, --help         this help"
    );
    std::process::exit(0);
}

/// The value following `flag`, or a targeted error (exit 2).
fn value_of(flag: &str, args: &mut impl Iterator<Item = String>) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("error: missing value for {flag}\n{USAGE}");
        std::process::exit(2);
    })
}

/// Wall-clock seconds since the Unix epoch (for ledger records).
fn unix_now_secs() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Appends one record for this run to the ledger at `path`, returning
/// the assigned run id. Ledger failures degrade to a warning — a broken
/// ledger must not lose an hour-long experiment run.
fn append_to_ledger(path: &str, snapshot: &poat_telemetry::MetricsSnapshot) -> Option<String> {
    let data = poat_ledger::RecordData::from_snapshot(snapshot, unix_now_secs());
    match poat_ledger::open_file(std::path::Path::new(path)) {
        Ok(mut ledger) => match ledger.append(data) {
            Ok(seq) => {
                let id = poat_ledger::run_id(seq);
                eprintln!(
                    "ledger: appended {id} ({} records in {path})",
                    ledger.records().len()
                );
                Some(id)
            }
            Err(e) => {
                eprintln!("warning: ledger append to {path} failed: {e}");
                None
            }
        },
        Err(e) => {
            eprintln!("warning: opening ledger {path} failed: {e}");
            None
        }
    }
}

/// Renders the span-tree profile: one row per path (indented by depth),
/// self vs total time, and per-invocation self-time percentiles.
fn profile_text(snap: &poat_telemetry::profile::ProfileSnapshot) -> String {
    let mut t = TextTable::new(
        "Span-tree profile (wall-clock; self excludes children; ns percentiles per invocation)",
        &[
            "Phase", "Count", "Total ms", "Self ms", "Self %", "p50", "p90", "p99",
        ],
    );
    let root_total = snap.root_total_nanos().max(1);
    for p in &snap.paths {
        t.row(vec![
            format!("{}{}", "  ".repeat(p.depth), p.name),
            p.count.to_string(),
            format!("{:.2}", p.total_nanos as f64 / 1e6),
            format!("{:.2}", p.self_nanos as f64 / 1e6),
            format!("{:.1}", 100.0 * p.self_nanos as f64 / root_total as f64),
            p.self_p50.to_string(),
            p.self_p90.to_string(),
            p.self_p99.to_string(),
        ]);
    }
    t.render()
}

/// Parses a `--diff` operand: a `run000007`-style id or a bare
/// sequence number.
fn parse_run_ref(s: &str) -> Option<u64> {
    s.strip_prefix("run").unwrap_or(s).parse().ok()
}

/// Prints the metric-level diff between two ledger records: the named
/// metric when one was given, otherwise the largest relative changes.
fn print_record_diff(
    a: &poat_ledger::LedgerRecord,
    b: &poat_ledger::LedgerRecord,
    metric: Option<&str>,
) {
    let delta_text = |va: u64, vb: u64| {
        let d = vb as i128 - va as i128;
        let rel = if va > 0 {
            format!(" ({:+.1}%)", 100.0 * d as f64 / va as f64)
        } else {
            String::new()
        };
        format!("{d:+}{rel}")
    };
    println!(
        "diff {} ({} @ {}) -> {} ({} @ {})",
        a.run_id(),
        a.data.command,
        a.data.timestamp_unix_secs,
        b.run_id(),
        b.data.command,
        b.data.timestamp_unix_secs
    );
    if let Some(name) = metric {
        match (a.data.metric(name), b.data.metric(name)) {
            (Some(va), Some(vb)) => {
                println!("{name}: {va} -> {vb}  {}", delta_text(va, vb));
            }
            (va, vb) => {
                eprintln!(
                    "error: metric `{name}` missing ({}: {va:?}, {}: {vb:?})",
                    a.run_id(),
                    b.run_id()
                );
                std::process::exit(1);
            }
        }
        return;
    }
    let mut changed: Vec<(String, u64, u64, f64)> = Vec::new();
    let mut names: Vec<String> = a.data.metric_names();
    names.extend(b.data.metric_names());
    names.sort();
    names.dedup();
    let total = names.len();
    for name in names {
        let (va, vb) = (
            a.data.metric(&name).unwrap_or(0),
            b.data.metric(&name).unwrap_or(0),
        );
        if va != vb {
            let rel = (vb as f64 - va as f64).abs() / (va.max(1) as f64);
            changed.push((name, va, vb, rel));
        }
    }
    changed.sort_by(|x, y| y.3.total_cmp(&x.3));
    const SHOW: usize = 20;
    for (name, va, vb, _) in changed.iter().take(SHOW) {
        println!("{name}: {va} -> {vb}  {}", delta_text(*va, *vb));
    }
    println!(
        "{} of {} metrics changed{}",
        changed.len(),
        total,
        if changed.len() > SHOW {
            format!(" (showing the {SHOW} largest relative changes)")
        } else {
            String::new()
        }
    );
}

/// The `repro report` entry point: lists, filters, and diffs the durable
/// run ledger (docs/OBSERVABILITY.md).
fn report_main(mut args: impl Iterator<Item = String>) -> ! {
    let mut ledger_path = DEFAULT_LEDGER.to_string();
    let mut last: Option<usize> = None;
    let mut metric: Option<String> = None;
    let mut command_filter: Option<String> = None;
    let mut diff: Option<(u64, u64)> = None;
    let bad = |flag: &str, v: &str| -> ! {
        eprintln!("error: bad value `{v}` for {flag}\n{USAGE}");
        std::process::exit(2);
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "-h" | "--help" => help(),
            "--ledger" => ledger_path = value_of("--ledger", &mut args),
            "--last" => {
                let v = value_of("--last", &mut args);
                last = Some(v.parse().unwrap_or_else(|_| bad("--last", &v)));
            }
            "--metric" => metric = Some(value_of("--metric", &mut args)),
            "--command" => command_filter = Some(value_of("--command", &mut args)),
            "--diff" => {
                let v = value_of("--diff", &mut args);
                let parsed = v
                    .split_once(':')
                    .and_then(|(x, y)| Some((parse_run_ref(x)?, parse_run_ref(y)?)));
                diff = Some(parsed.unwrap_or_else(|| bad("--diff", &v)));
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    let ledger = poat_ledger::open_file(std::path::Path::new(&ledger_path)).unwrap_or_else(|e| {
        eprintln!("error: opening ledger {ledger_path}: {e}");
        std::process::exit(1);
    });
    let scan = ledger.scan_report();
    if scan.torn_tail_bytes > 0 {
        eprintln!(
            "warning: truncated a torn tail of {} bytes ({})",
            scan.torn_tail_bytes,
            scan.torn_reason.as_deref().unwrap_or("unknown"),
        );
    }

    if let Some((a, b)) = diff {
        let (ra, rb) = (
            ledger.get(a).unwrap_or_else(|| {
                eprintln!("error: no record with sequence {a} in {ledger_path}");
                std::process::exit(1);
            }),
            ledger.get(b).unwrap_or_else(|| {
                eprintln!("error: no record with sequence {b} in {ledger_path}");
                std::process::exit(1);
            }),
        );
        print_record_diff(ra, rb, metric.as_deref());
        std::process::exit(0);
    }

    let filtered: Vec<&poat_ledger::LedgerRecord> = ledger
        .records()
        .iter()
        .filter(|r| {
            command_filter
                .as_deref()
                .map_or(true, |f| r.data.command.contains(f))
        })
        .collect();
    let shown = match last {
        Some(n) => &filtered[filtered.len().saturating_sub(n)..],
        None => &filtered[..],
    };

    match &metric {
        Some(name) => {
            let mut t = TextTable::new(
                &format!("{name} by run ({ledger_path})"),
                &["Run", "Command", "Scale", "Timestamp", name],
            );
            for r in shown {
                t.row(vec![
                    r.run_id(),
                    r.data.command.clone(),
                    r.data.scale.clone(),
                    r.data.timestamp_unix_secs.to_string(),
                    r.data
                        .metric(name)
                        .map(|v| v.to_string())
                        .unwrap_or_else(|| "-".to_string()),
                ]);
            }
            println!("{}", t.render());
            if let [.., prev, newest] = shown {
                if let (Some(va), Some(vb)) = (prev.data.metric(name), newest.data.metric(name)) {
                    let d = vb as i128 - va as i128;
                    let rel = if va > 0 {
                        format!(" ({:+.2}%)", 100.0 * d as f64 / va as f64)
                    } else {
                        String::new()
                    };
                    println!("delta {} -> {}: {d:+}{rel}", prev.run_id(), newest.run_id());
                }
            }
        }
        None => {
            let mut t = TextTable::new(
                &format!("Run ledger ({ledger_path})"),
                &[
                    "Run",
                    "Command",
                    "Scale",
                    "Timestamp",
                    "Elapsed s",
                    "Revision",
                    "Metrics",
                ],
            );
            for r in shown {
                t.row(vec![
                    r.run_id(),
                    r.data.command.clone(),
                    r.data.scale.clone(),
                    r.data.timestamp_unix_secs.to_string(),
                    format!("{:.1}", r.data.elapsed_micros as f64 / 1e6),
                    r.data.git_revision.chars().take(12).collect(),
                    (r.data.counters.len() + r.data.gauges.len() + r.data.histograms.len())
                        .to_string(),
                ]);
            }
            println!("{}", t.render());
        }
    }
    println!("{} records in {ledger_path}", ledger.records().len());
    std::process::exit(0);
}

/// Renders the phase-latency percentile table from the metrics registry
/// (the `span.<phase>.nanos` histograms; estimates — see docs/METRICS.md).
fn phase_latency_text(snapshot: &poat_telemetry::MetricsSnapshot) -> String {
    let mut t = TextTable::new(
        "Phase latency percentiles (ns, log2-bucket estimates)",
        &["Phase", "Run", "Count", "Mean", "p50", "p90", "p99", "Max"],
    );
    let mut any = false;
    for (name, h) in &snapshot.histograms {
        let Some(rest) = name.strip_prefix("span.") else {
            continue;
        };
        // `span.<phase>.nanos` aggregates the whole process; the
        // run-scoped `span.<phase>.nanos{run=<label>}` series carry one
        // workload run each (see docs/METRICS.md).
        let Some(pos) = rest.find(".nanos") else {
            continue;
        };
        let phase = &rest[..pos];
        let run = match &rest[pos + ".nanos".len()..] {
            "" => "all",
            suffix => match suffix
                .strip_prefix("{run=")
                .and_then(|s| s.strip_suffix('}'))
            {
                Some(label) => label,
                None => continue,
            },
        };
        if h.count == 0 {
            continue;
        }
        any = true;
        t.row(vec![
            phase.to_string(),
            run.to_string(),
            h.count.to_string(),
            format!("{:.0}", h.mean),
            h.p50.to_string(),
            h.p90.to_string(),
            h.p99.to_string(),
            h.max.to_string(),
        ]);
    }
    if any {
        t.render()
    } else {
        String::new()
    }
}

/// Runs one artifact block, publishing its wall-clock and simulated
/// instruction throughput as `harness.experiment.*{artifact=...}` gauges.
fn timed<R>(name: &str, f: impl FnOnce() -> R) -> R {
    let registry = poat_telemetry::global();
    let instructions = registry.counter("harness.workload.instructions");
    let before = instructions.get();
    let t0 = Instant::now();
    let out = f();
    let elapsed = t0.elapsed();
    let labels = [("artifact", name)];
    registry
        .gauge(&poat_telemetry::labeled(
            "harness.experiment.wall_nanos",
            &labels,
        ))
        .set(elapsed.as_nanos() as u64);
    let delta = instructions.get().saturating_sub(before);
    if delta > 0 && elapsed.as_secs_f64() > 0.0 {
        registry
            .gauge(&poat_telemetry::labeled(
                "harness.experiment.instructions_per_sec",
                &labels,
            ))
            .set((delta as f64 / elapsed.as_secs_f64()) as u64);
    }
    out
}

/// Installs the event recorder for `--trace` and returns the path the
/// flight-recorder tail will be dumped to on a translation fault.
fn install_tracing(trace_path: &str, trace_sample: u64) {
    let rec = events::install(1 << 20, trace_sample);
    rec.set_flight_path(std::path::PathBuf::from(format!(
        "{trace_path}.flight.json"
    )));
    events::set_enabled(true);
}

/// Writes the Chrome Trace Format JSON for the events recorded so far.
fn write_trace(path: &str) {
    let rec = events::installed().expect("recorder installed above");
    let evs = rec.events();
    std::fs::write(path, poat_telemetry::timeline::chrome_trace_json(&evs))
        .expect("write chrome trace");
    eprintln!(
        "trace written to {path} ({} events, 1-in-{} sampling) — open in Perfetto",
        evs.len(),
        rec.sample()
    );
}

/// The `repro crash-sweep` entry point: parses the subcommand's own
/// flags, runs a sweep campaign (or a single `--replay` cell), and exits
/// non-zero iff a clean/torn recovery-invariant violation was found.
fn crash_sweep_main(mut args: impl Iterator<Item = String>) -> ! {
    use poat_harness::crash_sweep;
    use poat_pmem::InjectMode;

    let mut scale = Scale::Quick;
    let mut inject: Option<Vec<InjectMode>> = None;
    let mut workload: Option<(poat_workloads::Micro, poat_workloads::Pattern)> = None;
    let mut max_points: Option<usize> = None;
    let mut replay: Option<(u64, u64)> = None;
    let mut trace_path: Option<String> = None;
    let mut trace_sample: u64 = 1;
    let mut metrics_path: Option<String> = None;
    let mut ledger_path: Option<String> = Some(DEFAULT_LEDGER.to_string());
    let bad = |flag: &str, v: &str| -> ! {
        eprintln!("error: bad value `{v}` for {flag}\n{USAGE}");
        std::process::exit(2);
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "-h" | "--help" => help(),
            "--quick" => scale = Scale::Quick,
            "--scale" => {
                let v = value_of("--scale", &mut args);
                scale = match v.as_str() {
                    "quick" => Scale::Quick,
                    "full" => Scale::Full,
                    _ => bad("--scale", &v),
                };
            }
            "--workload" => {
                let v = value_of("--workload", &mut args);
                workload =
                    Some(crash_sweep::parse_workload(&v).unwrap_or_else(|| bad("--workload", &v)));
            }
            "--inject" => {
                let v = value_of("--inject", &mut args);
                inject = Some(crash_sweep::parse_inject(&v).unwrap_or_else(|| bad("--inject", &v)));
            }
            "--max-points" => {
                let v = value_of("--max-points", &mut args);
                max_points = Some(v.parse().unwrap_or_else(|_| bad("--max-points", &v)));
            }
            "--replay" => {
                let v = value_of("--replay", &mut args);
                let parsed = v
                    .split_once(':')
                    .and_then(|(p, s)| Some((p.parse().ok()?, s.parse().ok()?)));
                replay = Some(parsed.unwrap_or_else(|| bad("--replay", &v)));
            }
            "--trace" => trace_path = Some(value_of("--trace", &mut args)),
            "--trace-sample" => {
                let v = value_of("--trace-sample", &mut args);
                trace_sample = v.parse().unwrap_or_else(|_| bad("--trace-sample", &v));
            }
            "--metrics" => metrics_path = Some(value_of("--metrics", &mut args)),
            "--ledger" => ledger_path = Some(value_of("--ledger", &mut args)),
            "--no-ledger" => ledger_path = None,
            other => {
                eprintln!("error: unknown argument `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = &trace_path {
        install_tracing(path, trace_sample);
    }
    poat_telemetry::global().reset();
    let started = Instant::now();

    let mut opts = poat_harness::crash_sweep::SweepOptions::for_scale(scale);
    if let Some(modes) = inject {
        opts.modes = modes;
    }
    opts.workload = workload;
    opts.max_points = max_points;

    let exit_code = if let Some((point, seed)) = replay {
        let Some((bench, pattern)) = opts.workload else {
            eprintln!("error: --replay requires --workload BENCH:PATTERN\n{USAGE}");
            std::process::exit(2);
        };
        let mode = opts.modes.first().copied().unwrap_or_default();
        match crash_sweep::replay(bench, pattern, scale, point, seed, mode) {
            Ok(out) => {
                println!(
                    "replay {}/{} point {point} seed {seed} [{}]: tripped={} undo_applied={} digest={:016x}",
                    bench.abbrev(),
                    pattern.label(),
                    mode.label(),
                    out.tripped,
                    out.undo_applied,
                    out.digest
                );
                for v in &out.violations {
                    println!("VIOLATION: {v}");
                }
                i32::from(!out.violations.is_empty() && mode != InjectMode::DropClwb)
            }
            Err(e) => {
                eprintln!("error: replay failed: {e}");
                1
            }
        }
    } else {
        match crash_sweep::sweep(&opts) {
            Ok(reports) => {
                println!("{}", crash_sweep::sweep_text(&reports));
                i32::from(crash_sweep::total_violations(&reports) > 0)
            }
            Err(e) => {
                eprintln!("error: crash sweep failed: {e}");
                1
            }
        }
    };

    if let Some(path) = &trace_path {
        write_trace(path);
    }
    if metrics_path.is_some() || ledger_path.is_some() {
        let manifest = poat_telemetry::RunManifest::collect("crash-sweep", scale.label(), started);
        let snapshot = poat_telemetry::global().snapshot(manifest);
        let run_id = ledger_path
            .as_deref()
            .and_then(|path| append_to_ledger(path, &snapshot));
        if let Some(path) = &metrics_path {
            write_artifact(
                "metrics snapshot",
                path,
                run_id.as_deref(),
                &snapshot.to_json_string(),
            );
        }
    }
    eprintln!(
        "[crash-sweep @ {scale:?}] completed in {:.1}s",
        started.elapsed().as_secs_f64()
    );
    std::process::exit(exit_code);
}

/// The `repro trace-roundtrip` entry point: for each selected workload,
/// records the trace, saves it, loads it back, and replays the original
/// and the reloaded copy on both core models, requiring bit-identical
/// `SimResult`s — the end-to-end proof that the compact on-disk encoding
/// is lossless where it matters. Also enforces the ≤ 12 B/op in-memory
/// budget the encoding is designed to (DESIGN.md). Exits non-zero on any
/// divergence.
fn trace_roundtrip_main(mut args: impl Iterator<Item = String>) -> ! {
    use poat_harness::{crash_sweep, runner};
    use poat_workloads::{ExpConfig, Micro, Pattern};

    const MAX_BYTES_PER_OP: usize = 12;

    let mut scale = Scale::Quick;
    let mut workload: Option<(Micro, Pattern)> = None;
    let mut dir: Option<std::path::PathBuf> = None;
    let bad = |flag: &str, v: &str| -> ! {
        eprintln!("error: bad value `{v}` for {flag}\n{USAGE}");
        std::process::exit(2);
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "-h" | "--help" => help(),
            "--quick" => scale = Scale::Quick,
            "--scale" => {
                let v = value_of("--scale", &mut args);
                scale = match v.as_str() {
                    "quick" => Scale::Quick,
                    "full" => Scale::Full,
                    _ => bad("--scale", &v),
                };
            }
            "--workload" => {
                let v = value_of("--workload", &mut args);
                workload =
                    Some(crash_sweep::parse_workload(&v).unwrap_or_else(|| bad("--workload", &v)));
            }
            "--dir" => dir = Some(std::path::PathBuf::from(value_of("--dir", &mut args))),
            other => {
                eprintln!("error: unknown argument `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    let (out_dir, cleanup) = match dir {
        Some(d) => (d, false),
        None => (
            std::env::temp_dir().join(format!("poat-trace-roundtrip-{}", std::process::id())),
            true,
        ),
    };
    std::fs::create_dir_all(&out_dir).expect("create trace output directory");

    let cells: Vec<(Micro, Pattern)> = match workload {
        Some(w) => vec![w],
        // A spread across data structures and access patterns.
        None => vec![
            (Micro::Ll, Pattern::Each),
            (Micro::Bst, Pattern::Random),
            (Micro::Sps, Pattern::All),
        ],
    };

    let started = Instant::now();
    let mut failures = 0u32;
    for (bench, pattern) in cells {
        let run = runner::run_micro(bench, pattern, ExpConfig::Opt, scale);
        let ops = run.trace.len();
        let bytes = run.trace.encoded_bytes();
        let path = out_dir.join(format!(
            "{}-{}.poattrc",
            bench.abbrev(),
            pattern.label().to_lowercase()
        ));
        poat_pmem::trace_io::save(&run.trace, &path).expect("save trace");
        let loaded = poat_pmem::trace_io::load(&path).unwrap_or_else(|e| {
            eprintln!("error: reloading {} failed: {e}", path.display());
            std::process::exit(1);
        });

        let mut cell_ok = loaded == run.trace;
        if !cell_ok {
            eprintln!("MISMATCH {bench}/{pattern}: reloaded trace differs from recorded trace");
        }
        let reloaded_run = poat_harness::WorkloadRun {
            label: format!("{}-reloaded", run.label),
            trace: loaded,
            state: run.state.clone(),
            xlat: run.xlat,
            summary: run.summary,
            pools: run.pools,
        };
        for core in [runner::Core::InOrder, runner::Core::OutOfOrder] {
            let a = runner::simulate(&run, core, runner::pipelined());
            let b = runner::simulate(&reloaded_run, core, runner::pipelined());
            if a != b {
                eprintln!("MISMATCH {bench}/{pattern} on {core:?}: {a:?}\n  vs reloaded {b:?}");
                cell_ok = false;
            }
        }
        let bpo = bytes as f64 / ops.max(1) as f64;
        if ops > 0 && bytes > MAX_BYTES_PER_OP * ops {
            eprintln!(
                "BUDGET {bench}/{pattern}: {bpo:.2} B/op exceeds the {MAX_BYTES_PER_OP} B/op budget"
            );
            cell_ok = false;
        }
        println!(
            "{:>4}/{:<6} {:>9} ops  {:>10} bytes  {bpo:>5.2} B/op  {}",
            bench.abbrev(),
            pattern.label(),
            ops,
            bytes,
            if cell_ok { "ok" } else { "FAILED" }
        );
        failures += u32::from(!cell_ok);
    }
    if cleanup {
        let _ = std::fs::remove_dir_all(&out_dir);
    }
    eprintln!(
        "[trace-roundtrip @ {scale:?}] completed in {:.1}s",
        started.elapsed().as_secs_f64()
    );
    std::process::exit(i32::from(failures > 0));
}

/// The `repro serve` entry point: runs the serve loop until the
/// configured exit condition (docs/OBSERVABILITY.md, serve mode).
fn serve_main(mut args: impl Iterator<Item = String>) -> ! {
    let mut opts = serve::ServeOptions {
        spool: std::path::PathBuf::from(DEFAULT_SPOOL),
        catalog: std::path::PathBuf::from(DEFAULT_CATALOG),
        ..serve::ServeOptions::default()
    };
    let bad = |flag: &str, v: &str| -> ! {
        eprintln!("error: bad value `{v}` for {flag}\n{USAGE}");
        std::process::exit(2);
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "-h" | "--help" => help(),
            "--spool" => opts.spool = std::path::PathBuf::from(value_of("--spool", &mut args)),
            "--catalog" => {
                opts.catalog = std::path::PathBuf::from(value_of("--catalog", &mut args));
            }
            "--poll-ms" => {
                let v = value_of("--poll-ms", &mut args);
                opts.poll_ms = v
                    .parse()
                    .ok()
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| bad("--poll-ms", &v));
            }
            "--drain" => opts.drain = true,
            "--idle-exit" => {
                let v = value_of("--idle-exit", &mut args);
                opts.idle_exit_secs = Some(v.parse().unwrap_or_else(|_| bad("--idle-exit", &v)));
            }
            "--workers" => {
                let v = value_of("--workers", &mut args);
                let n: usize = v.parse().ok().filter(|n| *n > 0).unwrap_or_else(|| {
                    eprintln!("error: --workers expects a positive integer, got `{v}`");
                    std::process::exit(2);
                });
                poat_harness::runner::set_worker_override(Some(n));
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    match serve::serve(&opts) {
        Ok(summary) => {
            eprintln!(
                "serve: {} claimed, {} completed, {} failed",
                summary.claimed, summary.completed, summary.failed
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("error: serve: {e}");
            std::process::exit(1);
        }
    }
}

/// The `repro submit` entry point: validates one job spec and drops it
/// into the spool atomically.
fn submit_main(mut args: impl Iterator<Item = String>) -> ! {
    let mut spool = std::path::PathBuf::from(DEFAULT_SPOOL);
    let mut positional: Vec<String> = Vec::new();
    while let Some(a) = args.next() {
        match a.as_str() {
            "-h" | "--help" => help(),
            "--spool" => spool = std::path::PathBuf::from(value_of("--spool", &mut args)),
            other if other.starts_with('-') => {
                eprintln!("error: unknown argument `{other}`\n{USAGE}");
                std::process::exit(2);
            }
            other => positional.push(other.to_string()),
        }
    }
    let [workload, design, scale] = positional.as_slice() else {
        eprintln!(
            "error: submit expects WORKLOAD DESIGN SCALE (got {} operand(s))\n{USAGE}",
            positional.len()
        );
        std::process::exit(2);
    };
    let spec = serve::validate_spec(workload, design, scale).unwrap_or_else(|e| {
        eprintln!("error: {e}\n{USAGE}");
        std::process::exit(2);
    });
    match serve::submit(&spool, &spec) {
        Ok(path) => {
            println!("submitted {} -> {}", spec.display(), path.display());
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("error: submitting to {}: {e}", spool.display());
            std::process::exit(1);
        }
    }
}

/// The `repro jobs` entry point: spool depth + catalog job table.
fn jobs_main(mut args: impl Iterator<Item = String>) -> ! {
    let mut spool = std::path::PathBuf::from(DEFAULT_SPOOL);
    let mut catalog = std::path::PathBuf::from(DEFAULT_CATALOG);
    while let Some(a) = args.next() {
        match a.as_str() {
            "-h" | "--help" => help(),
            "--spool" => spool = std::path::PathBuf::from(value_of("--spool", &mut args)),
            "--catalog" => catalog = std::path::PathBuf::from(value_of("--catalog", &mut args)),
            other => {
                eprintln!("error: unknown argument `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    match jobs::jobs_text(&spool, &catalog) {
        Ok(text) => {
            println!("{text}");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// The `repro catalog query` entry point: filtered historical jobs.
fn catalog_main(mut args: impl Iterator<Item = String>) -> ! {
    match args.next().as_deref() {
        Some("query") => {}
        Some("-h") | Some("--help") => help(),
        other => {
            eprintln!(
                "error: expected `repro catalog query`, got `catalog {}`\n{USAGE}",
                other.unwrap_or("")
            );
            std::process::exit(2);
        }
    }
    let mut catalog = std::path::PathBuf::from(DEFAULT_CATALOG);
    let mut filter = poat_catalog::QueryFilter::default();
    let mut metric: Option<String> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "-h" | "--help" => help(),
            "--catalog" => catalog = std::path::PathBuf::from(value_of("--catalog", &mut args)),
            "--workload" => filter.workload = Some(value_of("--workload", &mut args)),
            "--design" => filter.design = Some(value_of("--design", &mut args)),
            "--scale" => filter.scale = Some(value_of("--scale", &mut args)),
            "--status" => filter.status = Some(value_of("--status", &mut args)),
            "--metric" => metric = Some(value_of("--metric", &mut args)),
            other => {
                eprintln!("error: unknown argument `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    match jobs::query_text(&catalog, &filter, metric.as_deref()) {
        Ok(text) => {
            println!("{text}");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    // Library status lines (serve progress, artifact writes) land on
    // stderr; stdout stays machine-parseable.
    poat_harness::notify::set_sink(Box::new(|line| eprintln!("{line}")));
    let mut args = std::env::args().skip(1);
    let Some(artifact) = args.next() else { usage() };
    if matches!(artifact.as_str(), "-h" | "--help" | "help") {
        help();
    }
    if artifact == "crash-sweep" {
        crash_sweep_main(args);
    }
    if artifact == "trace-roundtrip" {
        trace_roundtrip_main(args);
    }
    if artifact == "report" {
        report_main(args);
    }
    if artifact == "serve" {
        serve_main(args);
    }
    if artifact == "submit" {
        submit_main(args);
    }
    if artifact == "jobs" {
        jobs_main(args);
    }
    if artifact == "catalog" {
        catalog_main(args);
    }
    let mut scale = Scale::Full;
    let mut json_path: Option<String> = None;
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut metrics_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut trace_sample: u64 = 1;
    let mut timeline_dir: Option<std::path::PathBuf> = None;
    let mut profile_on = false;
    let mut flame_path: Option<String> = None;
    let mut hud_secs: Option<u64> = None;
    let mut ledger_path: Option<String> = Some(DEFAULT_LEDGER.to_string());
    while let Some(a) = args.next() {
        match a.as_str() {
            "-h" | "--help" => help(),
            "--quick" => scale = Scale::Quick,
            "--workers" => {
                let v = value_of("--workers", &mut args);
                let n: usize = v.parse().ok().filter(|n| *n > 0).unwrap_or_else(|| {
                    eprintln!("error: --workers expects a positive integer, got `{v}`");
                    std::process::exit(2);
                });
                poat_harness::runner::set_worker_override(Some(n));
            }
            "--json" => json_path = Some(value_of("--json", &mut args)),
            "--csv" => {
                let d = std::path::PathBuf::from(value_of("--csv", &mut args));
                std::fs::create_dir_all(&d).expect("create csv output directory");
                csv_dir = Some(d);
            }
            "--metrics" => metrics_path = Some(value_of("--metrics", &mut args)),
            "--trace" => trace_path = Some(value_of("--trace", &mut args)),
            "--trace-sample" => {
                let v = value_of("--trace-sample", &mut args);
                trace_sample = v.parse().unwrap_or_else(|_| {
                    eprintln!("error: --trace-sample expects a positive integer, got `{v}`");
                    std::process::exit(2);
                });
            }
            "--timeline" => {
                let d = std::path::PathBuf::from(value_of("--timeline", &mut args));
                std::fs::create_dir_all(&d).expect("create timeline output directory");
                timeline_dir = Some(d);
            }
            "--profile" => profile_on = true,
            "--flame" => {
                flame_path = Some(value_of("--flame", &mut args));
                profile_on = true;
            }
            "--hud" => {
                let v = value_of("--hud", &mut args);
                let secs: u64 = v.parse().ok().filter(|s| *s > 0).unwrap_or_else(|| {
                    eprintln!("error: --hud expects a positive number of seconds, got `{v}`");
                    std::process::exit(2);
                });
                hud_secs = Some(secs);
            }
            "--ledger" => ledger_path = Some(value_of("--ledger", &mut args)),
            "--no-ledger" => ledger_path = None,
            other => {
                eprintln!("error: unknown argument `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    if profile_on {
        poat_telemetry::profile::set_sample(trace_sample);
        poat_telemetry::profile::set_enabled(true);
    }
    if let Some(secs) = hud_secs {
        poat_harness::hud::set_sink(Box::new(|line: &str| eprintln!("{line}")));
        poat_harness::hud::set_interval(Some(std::time::Duration::from_secs(secs)));
    }

    if trace_path.is_some() || timeline_dir.is_some() {
        let rec = events::install(1 << 20, trace_sample);
        // Auto-dump the flight-recorder tail next to the trace (or into
        // the timeline directory) if a translation fault fires.
        let flight = match (&trace_path, &timeline_dir) {
            (Some(p), _) => std::path::PathBuf::from(format!("{p}.flight.json")),
            (None, Some(d)) => d.join("flight.json"),
            (None, None) => unreachable!("guarded by the enclosing if"),
        };
        rec.set_flight_path(flight);
        events::set_enabled(true);
    }

    // Start from zeroed metrics so the snapshot describes exactly this run.
    poat_telemetry::global().reset();
    let started = Instant::now();
    let mut json: BTreeMap<String, serde_json::Value> = BTreeMap::new();

    let wants = |k: &str| artifact == k || artifact == "all";
    let mut matched = false;

    if wants("table2") {
        matched = true;
        let rows = timed("table2", || experiments::table2(scale));
        println!("{}", table2_text(&rows));
        if let Some(dir) = &csv_dir {
            csv::table2(dir, &rows).expect("write table2 csv");
        }
        json.insert(
            "table2".into(),
            serde_json::to_value(&rows).expect("serialize"),
        );
    }
    if wants("fig9a") || wants("fig9b") || wants("table8") || wants("instrs") {
        matched = true;
        let main = timed("main_matrix", || experiments::main_matrix(scale));
        if wants("fig9a") {
            println!("{}", fig9a_text(&main.fig9a));
        }
        if wants("fig9b") {
            println!("{}", fig9b_text(&main.fig9b));
        }
        if wants("table8") {
            println!("{}", table8_text(&main.table8));
        }
        if wants("instrs") {
            println!("{}", instrs_text(&main.instrs));
        }
        if let Some(dir) = &csv_dir {
            csv::main_results(dir, &main).expect("write fig9/table8 csvs");
        }
        json.insert(
            "main".into(),
            serde_json::to_value(&main).expect("serialize"),
        );
    }
    if wants("fig10") {
        matched = true;
        let rows = timed("fig10", || experiments::fig10(scale));
        println!("{}", fig10_text(&rows));
        if let Some(dir) = &csv_dir {
            csv::fig10(dir, &rows).expect("write fig10 csv");
        }
        json.insert(
            "fig10".into(),
            serde_json::to_value(&rows).expect("serialize"),
        );
    }
    if wants("fig11") || wants("table9") {
        matched = true;
        let rows = timed("fig11", || experiments::fig11(scale));
        if wants("fig11") {
            println!("{}", fig11_text(&rows));
        }
        if wants("table9") {
            println!("{}", table9_text(&rows));
        }
        if let Some(dir) = &csv_dir {
            csv::fig11(dir, &rows).expect("write fig11/table9 csvs");
        }
        json.insert(
            "fig11".into(),
            serde_json::to_value(&rows).expect("serialize"),
        );
    }
    if wants("fig12") {
        matched = true;
        let rows = timed("fig12", || experiments::fig12(scale));
        println!("{}", fig12_text(&rows));
        if let Some(dir) = &csv_dir {
            csv::fig12(dir, &rows).expect("write fig12 csv");
        }
        json.insert(
            "fig12".into(),
            serde_json::to_value(&rows).expect("serialize"),
        );
    }
    if wants("seeds") {
        matched = true;
        let rows = timed("seeds", || experiments::seeds(scale, 5));
        println!("{}", experiments::seeds_text(&rows));
        json.insert(
            "seeds".into(),
            serde_json::to_value(&rows).expect("serialize"),
        );
    }
    if wants("ablations") {
        matched = true;
        let r = timed("ablations", || ablations::all(scale));
        println!("{}", ablations::all_text(&r));
        if let Some(dir) = &csv_dir {
            csv::ablations(dir, &r).expect("write ablation csvs");
        }
        json.insert(
            "ablations".into(),
            serde_json::to_value(&r).expect("serialize"),
        );
    }
    if !matched {
        usage();
    }

    // The Chrome trace snapshots the artifact run's events; it must be
    // written before the timeline pass, which clears the ring per run.
    if let Some(path) = &trace_path {
        write_trace(path);
    }
    if let Some(dir) = &timeline_dir {
        let rows = timed("timeline", || timeline::collect(scale));
        println!("{}", timeline::text(&rows));
        timeline::write_csvs(dir, &rows).expect("write timeline csvs");
        eprintln!("timelines written to {}", dir.display());
    }

    // The profile publishes into the registry *before* the snapshot is
    // cut, so the metrics file and the ledger record both carry the
    // per-phase `profile.*` counters.
    let profile_snap = if profile_on {
        poat_telemetry::profile::set_enabled(false);
        let snap = poat_telemetry::profile::snapshot();
        snap.publish(poat_telemetry::global());
        Some(snap)
    } else {
        None
    };

    let manifest = poat_telemetry::RunManifest::collect(&artifact, scale.label(), started);
    let snapshot = poat_telemetry::global().snapshot(manifest.clone());
    let phases = phase_latency_text(&snapshot);
    if !phases.is_empty() {
        println!("{phases}");
    }
    if let Some(prof) = &profile_snap {
        if prof.is_empty() {
            eprintln!("profile: nothing recorded (no profiled scopes ran)");
        } else {
            println!("{}", profile_text(prof));
            let (self_sum, root_total) = (prof.total_self_nanos(), prof.root_total_nanos());
            eprintln!(
                "profile: self-times cover {self_sum} of {root_total} root ns ({:.3}%)",
                100.0 * self_sum as f64 / root_total.max(1) as f64
            );
        }
        if let Some(path) = &flame_path {
            std::fs::write(path, prof.collapsed()).expect("write collapsed-stack flamegraph");
            eprintln!(
                "flamegraph written to {path} ({} stacks, collapsed format — \
                 feed to inferno-flamegraph)",
                prof.collapsed().lines().count()
            );
        }
    }

    let run_id = ledger_path
        .as_deref()
        .and_then(|path| append_to_ledger(path, &snapshot));

    if let Some(path) = json_path {
        json.insert(
            "manifest".into(),
            serde_json::to_value(&manifest).expect("serialize manifest"),
        );
        let contents = serde_json::to_string_pretty(&json).expect("serialize results");
        write_artifact("results", &path, run_id.as_deref(), &contents);
    }
    if let Some(path) = metrics_path {
        write_artifact(
            "metrics snapshot",
            &path,
            run_id.as_deref(),
            &snapshot.to_json_string(),
        );
    }
    eprintln!(
        "[{artifact} @ {scale:?}] completed in {:.1}s",
        started.elapsed().as_secs_f64()
    );
}

//! `repro` — regenerate the MICRO'17 tables and figures.
//!
//! ```text
//! repro <artifact> [--quick] [--json PATH] [--csv DIR]
//!
//! artifacts: table2 | fig9a | fig9b | table8 | instrs | fig10
//!            | fig11 | table9 | fig12 | ablations | seeds | all
//! ```

use std::collections::BTreeMap;
use std::io::Write;
use std::time::Instant;

use poat_harness::{ablations, csv};
use poat_harness::experiments::{
    self, fig10_text, fig11_text, fig12_text, fig9a_text, fig9b_text, instrs_text, table2_text,
    table8_text, table9_text,
};
use poat_harness::Scale;

fn usage() -> ! {
    eprintln!(
        "usage: repro <table2|fig9a|fig9b|table8|instrs|fig10|fig11|table9|fig12|ablations|seeds|all> \
         [--quick] [--json PATH] [--csv DIR]"
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(artifact) = args.next() else { usage() };
    let mut scale = Scale::Full;
    let mut json_path: Option<String> = None;
    let mut csv_dir: Option<std::path::PathBuf> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => scale = Scale::Quick,
            "--json" => json_path = Some(args.next().unwrap_or_else(|| usage())),
            "--csv" => {
                let d = std::path::PathBuf::from(args.next().unwrap_or_else(|| usage()));
                std::fs::create_dir_all(&d).expect("create csv output directory");
                csv_dir = Some(d);
            }
            _ => usage(),
        }
    }

    let started = Instant::now();
    let mut json: BTreeMap<String, serde_json::Value> = BTreeMap::new();

    let wants = |k: &str| artifact == k || artifact == "all";
    let mut matched = false;

    if wants("table2") {
        matched = true;
        let rows = experiments::table2(scale);
        println!("{}", table2_text(&rows));
        if let Some(dir) = &csv_dir {
            csv::table2(dir, &rows).expect("write table2 csv");
        }
        json.insert("table2".into(), serde_json::to_value(&rows).expect("serialize"));
    }
    if wants("fig9a") || wants("fig9b") || wants("table8") || wants("instrs") {
        matched = true;
        let main = experiments::main_matrix(scale);
        if wants("fig9a") {
            println!("{}", fig9a_text(&main.fig9a));
        }
        if wants("fig9b") {
            println!("{}", fig9b_text(&main.fig9b));
        }
        if wants("table8") {
            println!("{}", table8_text(&main.table8));
        }
        if wants("instrs") {
            println!("{}", instrs_text(&main.instrs));
        }
        if let Some(dir) = &csv_dir {
            csv::main_results(dir, &main).expect("write fig9/table8 csvs");
        }
        json.insert("main".into(), serde_json::to_value(&main).expect("serialize"));
    }
    if wants("fig10") {
        matched = true;
        let rows = experiments::fig10(scale);
        println!("{}", fig10_text(&rows));
        if let Some(dir) = &csv_dir {
            csv::fig10(dir, &rows).expect("write fig10 csv");
        }
        json.insert("fig10".into(), serde_json::to_value(&rows).expect("serialize"));
    }
    if wants("fig11") || wants("table9") {
        matched = true;
        let rows = experiments::fig11(scale);
        if wants("fig11") {
            println!("{}", fig11_text(&rows));
        }
        if wants("table9") {
            println!("{}", table9_text(&rows));
        }
        if let Some(dir) = &csv_dir {
            csv::fig11(dir, &rows).expect("write fig11/table9 csvs");
        }
        json.insert("fig11".into(), serde_json::to_value(&rows).expect("serialize"));
    }
    if wants("fig12") {
        matched = true;
        let rows = experiments::fig12(scale);
        println!("{}", fig12_text(&rows));
        if let Some(dir) = &csv_dir {
            csv::fig12(dir, &rows).expect("write fig12 csv");
        }
        json.insert("fig12".into(), serde_json::to_value(&rows).expect("serialize"));
    }
    if wants("seeds") {
        matched = true;
        let rows = experiments::seeds(scale, 5);
        println!("{}", experiments::seeds_text(&rows));
        json.insert("seeds".into(), serde_json::to_value(&rows).expect("serialize"));
    }
    if wants("ablations") {
        matched = true;
        let r = ablations::all(scale);
        println!("{}", ablations::all_text(&r));
        if let Some(dir) = &csv_dir {
            csv::ablations(dir, &r).expect("write ablation csvs");
        }
        json.insert("ablations".into(), serde_json::to_value(&r).expect("serialize"));
    }
    if !matched {
        usage();
    }

    if let Some(path) = json_path {
        let mut f = std::fs::File::create(&path).expect("create json output");
        f.write_all(
            serde_json::to_string_pretty(&json)
                .expect("serialize results")
                .as_bytes(),
        )
        .expect("write json output");
        eprintln!("results written to {path}");
    }
    eprintln!(
        "[{artifact} @ {scale:?}] completed in {:.1}s",
        started.elapsed().as_secs_f64()
    );
}

//! End-to-end contract for serve mode (docs/OBSERVABILITY.md): jobs
//! submitted concurrently and drained by `repro serve` produce results
//! byte-identical to the same cells executed via the batch library
//! path, the catalog survives a re-open with every job intact, and the
//! `repro jobs` / `repro catalog query` CLIs see what the server wrote.

use std::collections::BTreeMap;
use std::process::Command;

use poat_harness::runner::{self, Core};
use poat_harness::serve;
use poat_workloads::ExpConfig;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("run repro")
}

/// The batch-path ground truth for one serve job: the same
/// `run_micro` + `simulate` calls `repro` makes, projected into the
/// catalog's metric map.
fn batch_metrics(workload: &str, design: &str) -> BTreeMap<String, u64> {
    let (bench, pattern) = poat_harness::crash_sweep::parse_workload(workload).unwrap();
    let translation = match design {
        "parallel" => runner::parallel(),
        "ideal" => runner::ideal(),
        _ => runner::pipelined(),
    };
    let run = runner::run_micro(bench, pattern, ExpConfig::Opt, runner::Scale::Quick);
    serve::result_metrics(&runner::simulate(&run, Core::InOrder, translation))
}

#[test]
fn served_jobs_match_batch_runs_byte_for_byte() {
    let dir = std::env::temp_dir().join(format!("poat_serve_e2e_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let spool = dir.join("spool");
    let catalog = dir.join("catalog.poatcat");
    let spool_s = spool.to_str().unwrap().to_string();
    let catalog_s = catalog.to_str().unwrap().to_string();

    // Two submissions racing from separate threads (the concurrent-
    // submission acceptance criterion): both must land atomically.
    let cells = [("LL:ALL", "pipelined"), ("BST:RANDOM", "ideal")];
    std::thread::scope(|s| {
        for (workload, design) in cells {
            let spool = spool.clone();
            s.spawn(move || {
                let spec = serve::validate_spec(workload, design, "quick").unwrap();
                serve::submit(&spool, &spec).unwrap();
            });
        }
    });
    assert_eq!(serve::pending_specs(&spool).unwrap().len(), 2);

    // Drain them through the real binary.
    let out = repro(&[
        "serve",
        "--spool",
        &spool_s,
        "--catalog",
        &catalog_s,
        "--drain",
    ]);
    assert!(
        out.status.success(),
        "serve failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(serve::pending_specs(&spool).unwrap().is_empty());
    assert!(serve::running_specs(&spool).unwrap().is_empty());

    // Re-open the catalog cold (a fresh process boot) and compare every
    // job's metrics against an independently computed batch run.
    let cat = poat_catalog::open_file_read_only(&catalog).unwrap();
    let jobs: Vec<_> = cat.jobs().collect();
    assert_eq!(jobs.len(), 2, "both jobs recorded");
    for job in &jobs {
        assert_eq!(job.status, poat_catalog::JobStatus::Completed, "{job:?}");
        let expected = batch_metrics(&job.spec.workload, &job.spec.design);
        assert_eq!(
            job.metrics,
            expected,
            "served metrics for {} diverge from the batch path",
            job.spec.display()
        );
        // Byte-identical in the strict sense: the durable encodings of
        // the metric maps match, not just their parsed views.
        let served = poat_catalog::CatalogRecord::completed(
            job.job_id,
            job.spec.clone(),
            job.finished_unix_secs,
            job.elapsed_micros,
            job.metrics.clone(),
        );
        let rebuilt = poat_catalog::CatalogRecord::completed(
            job.job_id,
            job.spec.clone(),
            job.finished_unix_secs,
            job.elapsed_micros,
            expected,
        );
        assert_eq!(served.encode(), rebuilt.encode());
    }

    // The observer CLIs see the same state.
    let out = repro(&["jobs", "--spool", &spool_s, "--catalog", &catalog_s]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("0 pending, 0 running, 2 completed, 0 failed"),
        "jobs summary:\n{stdout}"
    );

    let out = repro(&[
        "catalog",
        "query",
        "--catalog",
        &catalog_s,
        "--workload",
        "BST:RANDOM",
        "--metric",
        "sim.result.cycles",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1 job(s) matched"), "query:\n{stdout}");
    let cycles = batch_metrics("BST:RANDOM", "ideal")["sim.result.cycles"];
    assert!(
        stdout.contains(&cycles.to_string()),
        "query projects the served cycle count {cycles}:\n{stdout}"
    );

    // A second serve session over the same catalog appends, never
    // clobbers: ids continue after the existing jobs.
    let spec = serve::validate_spec("SPS:ALL", "pipelined", "quick").unwrap();
    serve::submit(&spool, &spec).unwrap();
    let out = repro(&[
        "serve",
        "--spool",
        &spool_s,
        "--catalog",
        &catalog_s,
        "--drain",
    ]);
    assert!(out.status.success());
    let cat = poat_catalog::open_file_read_only(&catalog).unwrap();
    assert_eq!(cat.jobs().count(), 3);
    assert_eq!(cat.job(3).unwrap().spec.workload, "SPS:ALL");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn help_and_missing_values_cover_the_serve_surface() {
    let out = repro(&["--help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "repro serve",
        "repro submit",
        "repro jobs",
        "repro catalog query",
        "--spool DIR",
        "--catalog PATH",
        "--drain",
        "--idle-exit SECS",
        "--status S",
    ] {
        assert!(stdout.contains(needle), "help documents `{needle}`");
    }

    for (args, needle) in [
        (&["serve", "--spool"][..], "missing value for --spool"),
        (
            &["serve", "--idle-exit"][..],
            "missing value for --idle-exit",
        ),
        (
            &["serve", "--poll-ms", "0"][..],
            "bad value `0` for --poll-ms",
        ),
        (&["jobs", "--catalog"][..], "missing value for --catalog"),
        (
            &["catalog", "query", "--metric"][..],
            "missing value for --metric",
        ),
        (&["catalog", "list"][..], "expected `repro catalog query`"),
        (
            &["submit", "LL:ALL", "pipelined"][..],
            "submit expects WORKLOAD DESIGN SCALE",
        ),
        (
            &["submit", "LL:ALL", "warp", "quick"][..],
            "unknown design `warp`",
        ),
    ] {
        let out = repro(args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "`repro {}` exits 2",
            args.join(" ")
        );
        assert!(
            String::from_utf8_lossy(&out.stderr).contains(needle),
            "`repro {}` error mentions `{needle}`, got:\n{}",
            args.join(" "),
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

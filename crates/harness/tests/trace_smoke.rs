//! End-to-end smoke test for `repro --trace` / `--timeline`: the binary
//! must emit a well-formed, non-empty Chrome Trace Format JSON carrying
//! POLB-miss and POT-walk events for BOTH hardware designs (fig9a runs
//! the Pipelined and Parallel in-order matrices), plus per-workload
//! timeline CSVs.

use std::collections::BTreeSet;
use std::process::Command;

#[test]
fn repro_quick_trace_emits_wellformed_chrome_json() {
    let dir = std::env::temp_dir().join("poat_trace_smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("trace.json");
    let tl = dir.join("timelines");

    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "fig9a",
            "--quick",
            "--no-ledger",
            "--trace",
            trace.to_str().unwrap(),
            "--timeline",
            tl.to_str().unwrap(),
        ])
        .output()
        .expect("run repro");
    assert!(
        out.status.success(),
        "repro failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let body = std::fs::read_to_string(&trace).expect("trace file exists");
    assert!(!body.is_empty(), "trace must be non-empty");
    let json: serde_json::Value = serde_json::from_str(&body).expect("trace parses as JSON");
    let events = json["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty(), "trace must carry events");

    // (design pid, event name) pairs present in the trace. Pipelined = 1,
    // Parallel = 2 (see docs/TRACING.md).
    let seen: BTreeSet<(u64, String)> = events
        .iter()
        .filter_map(|e| Some((e["pid"].as_u64()?, e["name"].as_str()?.to_string())))
        .collect();
    for pid in [1u64, 2] {
        for name in ["polb_miss", "pot_walk"] {
            assert!(
                seen.contains(&(pid, name.to_string())),
                "missing {name} events for design pid {pid}"
            );
        }
    }

    // Spans carry their probe count and a positive duration.
    let span = events
        .iter()
        .find(|e| e["ph"].as_str() == Some("X") && e["name"].as_str() == Some("pot_walk"))
        .expect("at least one complete pot_walk span");
    assert!(span["dur"].as_u64().unwrap() >= 1);
    assert!(span["args"]["probes"].as_u64().is_some());

    // The timeline pass wrote per-(bench, design) CSVs with the schema
    // header and at least one data row for a hardware design.
    let csv =
        std::fs::read_to_string(tl.join("timeline_ll_pipelined.csv")).expect("timeline csv exists");
    let mut lines = csv.lines();
    assert!(lines
        .next()
        .unwrap()
        .starts_with("design,start_instr,accesses"));
    assert!(lines.next().is_some(), "timeline csv has data rows");

    // The stdout report carries the timeline and percentile sections.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("## Timeline"));
    assert!(stdout.contains("Phase latency percentiles"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repro_help_and_missing_value_errors() {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("--help")
        .output()
        .expect("run repro --help");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("--trace PATH"), "help documents --trace");

    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["fig9a", "--trace"])
        .output()
        .expect("run repro with missing value");
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("missing value for --trace"),
        "targeted error for missing flag value"
    );
}

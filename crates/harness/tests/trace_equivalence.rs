//! The compact streaming trace must be a *perfect* stand-in for the old
//! materialized `Vec<TraceOp>` representation — and the zero-copy
//! memory-mapped reader a perfect stand-in for both: across the full
//! quick-scale workload × design × core matrix, replaying (a) the
//! streaming decoder, (b) a materialized op vector, and (c) the lazily
//! validated `MmapTrace` decode of the chunked on-disk layout must
//! produce bit-identical `SimResult`s — cycles and every counter
//! (translation, cache, TLB, store forwarding). Any drift in the
//! encoder, either decoder, or the iterator plumbing shows up here as a
//! field-level mismatch.
//!
//! The same matrix enforces the encoding's reason to exist: ≤ 12 bytes
//! per dynamic op in memory (the old enum was ~40 B/op), checked on every
//! workload the matrix records plus a dedicated reference workload.

use poat_harness::runner::{
    self, ideal, parallel, pipelined, run_micro, run_tpcc, Core, Scale, WorkloadRun,
};
use poat_pmem::trace_io::{self, MmapTrace};
use poat_pmem::TraceOp;
use poat_sim::{simulate_inorder_ops, simulate_ooo_ops, SimConfig};
use poat_workloads::{ExpConfig, Micro, Pattern, TpccPattern};

/// The in-memory budget the encoding is designed to (see DESIGN.md).
const MAX_BYTES_PER_OP: usize = 12;

/// Small enough that even quick-scale traces split into several chunks,
/// so the per-chunk decoder-resume path is actually exercised.
const TEST_CHUNK_OPS: usize = 4096;

/// Replays `run` three ways — streaming straight off the compact
/// encoding, from a fully materialized op vector (the seed
/// representation), and through the lazily validated mmap reader over
/// the chunked layout — and requires bit-identical results on every
/// supported core × design.
fn assert_representations_equivalent(run: &WorkloadRun) {
    let materialized: Vec<TraceOp> = run.trace.ops().collect();
    assert_eq!(materialized.len(), run.trace.len());
    let mapped = MmapTrace::from_owned(trace_io::to_chunked_bytes(&run.trace, TEST_CHUNK_OPS))
        .expect("chunked serialization of a valid trace passes the structural pass");
    assert_eq!(mapped.len(), run.trace.len());

    let combos: &[(Core, poat_core::TranslationConfig, &str)] = &[
        (Core::InOrder, pipelined(), "inorder/pipelined"),
        (Core::InOrder, parallel(), "inorder/parallel"),
        (Core::InOrder, ideal(), "inorder/ideal"),
        (Core::OutOfOrder, pipelined(), "ooo/pipelined"),
        (Core::OutOfOrder, ideal(), "ooo/ideal"),
    ];
    for (core, translation, label) in combos {
        let cfg = SimConfig::with_translation(*translation);
        let streamed = runner::simulate_with(run, *core, cfg.clone());
        let from_vec = match core {
            Core::InOrder => simulate_inorder_ops(materialized.iter().copied(), &run.state, &cfg),
            Core::OutOfOrder => simulate_ooo_ops(materialized.iter().copied(), &run.state, &cfg),
        }
        .expect("supported combination");
        assert_eq!(
            streamed, from_vec,
            "{}: streaming vs materialized diverged on {label}",
            run.label
        );
        let lazy_ops = mapped
            .checked_ops()
            .map(|op| op.expect("a valid trace decodes cleanly"));
        let from_mmap = match core {
            Core::InOrder => simulate_inorder_ops(lazy_ops, &run.state, &cfg),
            Core::OutOfOrder => simulate_ooo_ops(lazy_ops, &run.state, &cfg),
        }
        .expect("supported combination");
        assert_eq!(
            streamed, from_mmap,
            "{}: streaming vs mmap diverged on {label}",
            run.label
        );
    }
    assert!(
        (0..mapped.num_chunks()).all(|i| mapped.chunk_validated(i)),
        "{}: replay touched every chunk, so all must be marked validated",
        run.label
    );
}

fn assert_bytes_per_op(run: &WorkloadRun) {
    let ops = run.trace.len();
    let bytes = run.trace.encoded_bytes();
    assert!(
        bytes <= MAX_BYTES_PER_OP * ops.max(1),
        "{}: {bytes} bytes for {ops} ops ({:.2} B/op) blows the {MAX_BYTES_PER_OP} B/op budget",
        run.label,
        bytes as f64 / ops.max(1) as f64
    );
}

#[test]
fn quick_matrix_micro_benchmarks_are_bit_identical() {
    for bench in Micro::ALL {
        for pattern in [Pattern::All, Pattern::Each, Pattern::Random] {
            for config in [ExpConfig::Base, ExpConfig::Opt] {
                let run = run_micro(bench, pattern, config, Scale::Quick);
                assert_representations_equivalent(&run);
                assert_bytes_per_op(&run);
            }
        }
    }
}

#[test]
fn quick_matrix_tpcc_is_bit_identical() {
    for pattern in [TpccPattern::All, TpccPattern::Each] {
        for config in [ExpConfig::Base, ExpConfig::Opt] {
            let run = run_tpcc(pattern, config, Scale::Quick);
            assert_representations_equivalent(&run);
            assert_bytes_per_op(&run);
        }
    }
}

#[test]
fn mmap_replay_from_a_real_file_matches_streaming() {
    // The matrix above replays the mmap decode over an owned buffer; one
    // workload also goes through an actual on-disk chunked file and a
    // real kernel mapping, end to end.
    let run = run_micro(Micro::Bst, Pattern::Random, ExpConfig::Opt, Scale::Quick);
    let path = std::env::temp_dir().join(format!("poat-equiv-mmap-{}.poattrc", std::process::id()));
    trace_io::save_chunked(&run.trace, &path, TEST_CHUNK_OPS).expect("save chunked trace");
    let mapped = MmapTrace::open(&path).expect("open mapped trace");
    assert!(
        cfg!(not(unix)) || mapped.is_mapped(),
        "unix opens a real mapping"
    );
    let cfg = SimConfig::with_translation(pipelined());
    let streamed = runner::simulate_with(&run, Core::InOrder, cfg.clone());
    let from_mmap = simulate_inorder_ops(
        mapped
            .checked_ops()
            .map(|op| op.expect("a valid trace decodes cleanly")),
        &run.state,
        &cfg,
    )
    .expect("supported combination");
    assert_eq!(streamed, from_mmap);
    drop(mapped);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn reference_workload_stays_under_twelve_bytes_per_op() {
    // The canonical reference workload for the budget: the B+Tree
    // microbenchmark (deepest pointer chasing, widest op mix) under both
    // codegen configurations. If the encoding regresses past 12 B/op
    // here, the memory win that justified it is gone — fail loudly.
    for config in [ExpConfig::Base, ExpConfig::Opt] {
        let run = run_micro(Micro::Bpt, Pattern::Random, config, Scale::Quick);
        assert_bytes_per_op(&run);
        // The budget must hold by a real margin on real workloads: the
        // delta/backref layout lands well under half the cap in practice.
        let ops = run.trace.len();
        let bytes = run.trace.encoded_bytes();
        assert!(
            bytes <= 8 * ops,
            "{}: {:.2} B/op — still within 12 but far above the expected \
             compression; investigate before the budget breaks",
            run.label,
            bytes as f64 / ops as f64
        );
    }
}

//! End-to-end crash-sweep campaign assertions (quick scale).
//!
//! These drive the same `crash_sweep` entry points as the
//! `repro crash-sweep` subcommand: a sampled campaign over every quick
//! workload must find zero clean/torn violations, replaying one cell
//! must be bit-identical across invocations, and the drop-clwb negative
//! control must show the verifier actually detects lost persists.

use poat_harness::crash_sweep::{self, SweepOptions};
use poat_harness::Scale;
use poat_pmem::InjectMode;
use poat_workloads::{Micro, Pattern};

#[test]
fn quick_sweep_is_clean_on_every_workload() {
    // Evenly-spaced sample keeps the dev-profile run short; the CI smoke
    // and the release CLI sweep every point.
    let mut opts = SweepOptions::for_scale(Scale::Quick);
    opts.max_points = Some(25);
    let reports = crash_sweep::sweep(&opts).expect("sweep runs");
    assert_eq!(reports.len(), 4, "LL+BST x ALL+EACH");
    for r in &reports {
        assert!(
            r.enumerated > 0,
            "{}: no crash points enumerated",
            r.workload
        );
        assert_eq!(r.swept, 25, "{}: sample size", r.workload);
        assert_eq!(r.runs, 25 * 2 * 2, "{}: swept x modes x seeds", r.workload);
        assert_eq!(
            r.crashes as usize, r.runs,
            "{}: every armed point must trip",
            r.workload
        );
        assert!(
            r.violations.is_empty(),
            "{}: recovery-invariant violations: {:?}",
            r.workload,
            r.violations
        );
    }
    assert_eq!(crash_sweep::total_violations(&reports), 0);
}

#[test]
fn replay_is_bit_identical_across_invocations() {
    let (bench, pattern) = (Micro::Bst, Pattern::Each);
    let points = crash_sweep::enumerate(bench, pattern, Scale::Quick).expect("enumerate");
    assert!(points.len() > 2);
    // First boundary, a mid-transaction one, and the final fence.
    let picks = [
        points[0].index,
        points[points.len() / 2].index,
        points[points.len() - 1].index,
    ];
    for point in picks {
        for mode in [InjectMode::Clean, InjectMode::Torn] {
            let a = crash_sweep::run_point(bench, pattern, Scale::Quick, point, 7, mode)
                .expect("first run");
            let b =
                crash_sweep::replay(bench, pattern, Scale::Quick, point, 7, mode).expect("replay");
            assert_eq!(
                a.digest,
                b.digest,
                "point {point} [{}]: post-recovery state must be bit-identical",
                mode.label()
            );
            assert_eq!(a.tripped, b.tripped, "point {point}");
            assert_eq!(a.undo_applied, b.undo_applied, "point {point}");
            assert_eq!(a.violations, b.violations, "point {point}");
        }
    }
}

#[test]
fn drop_clwb_negative_control_is_detected() {
    // Dropping clwbs breaches the persistence contract the runtime relies
    // on; sweeping every point under that mode must make the verifier
    // fire somewhere — otherwise the invariant checks are vacuous.
    let mut opts = SweepOptions::for_scale(Scale::Quick);
    opts.workload = Some((Micro::Ll, Pattern::All));
    opts.modes = vec![InjectMode::DropClwb];
    opts.seeds = vec![1];
    let reports = crash_sweep::sweep(&opts).expect("sweep runs");
    assert_eq!(reports.len(), 1);
    assert!(
        reports[0].detections > 0,
        "drop-clwb across {} points produced no detection",
        reports[0].swept
    );
    // Detections are scored as the negative control, not as violations.
    assert!(
        reports[0].violations.is_empty(),
        "{:?}",
        reports[0].violations
    );
}

#[test]
fn workload_and_inject_parsing() {
    assert_eq!(
        crash_sweep::parse_workload("LL:ALL"),
        Some((Micro::Ll, Pattern::All))
    );
    assert_eq!(
        crash_sweep::parse_workload("bst:each"),
        Some((Micro::Bst, Pattern::Each))
    );
    assert_eq!(crash_sweep::parse_workload("LL"), None);
    assert_eq!(crash_sweep::parse_workload("XX:ALL"), None);
    assert_eq!(
        crash_sweep::parse_inject("all"),
        Some(vec![
            InjectMode::Clean,
            InjectMode::Torn,
            InjectMode::DropClwb
        ])
    );
    assert_eq!(crash_sweep::parse_inject("bogus"), None);
}

//! End-to-end CLI contract for the observability surface added with the
//! run ledger (docs/OBSERVABILITY.md): `--help` documents every new
//! flag, missing values die with targeted exit-2 errors, and the
//! ledger → `repro report` → flamegraph loop closes — two runs make two
//! queryable records and a non-empty collapsed-stack export.

use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("run repro")
}

#[test]
fn help_documents_the_observability_flags() {
    let out = repro(&["--help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "--profile",
        "--flame PATH",
        "--hud SECS",
        "--ledger PATH",
        "--no-ledger",
        "repro report",
        "--last N",
        "--metric NAME",
        "--diff A:B",
    ] {
        assert!(stdout.contains(needle), "help documents `{needle}`");
    }
}

#[test]
fn missing_flag_values_die_with_targeted_errors() {
    for (args, needle) in [
        (&["fig9a", "--flame"][..], "missing value for --flame"),
        (&["fig9a", "--hud"][..], "missing value for --hud"),
        (&["fig9a", "--ledger"][..], "missing value for --ledger"),
        (&["report", "--metric"][..], "missing value for --metric"),
        (&["report", "--last"][..], "missing value for --last"),
        (&["report", "--diff"][..], "missing value for --diff"),
        (&["fig9a", "--hud", "0"][..], "--hud expects a positive"),
        (&["report", "--last", "x"][..], "bad value `x` for --last"),
        (&["report", "--diff", "1"][..], "bad value `1` for --diff"),
    ] {
        let out = repro(args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "`repro {}` exits 2",
            args.join(" ")
        );
        assert!(
            String::from_utf8_lossy(&out.stderr).contains(needle),
            "`repro {}` error mentions `{needle}`",
            args.join(" ")
        );
    }
}

#[test]
fn two_runs_make_two_ledger_records_and_a_flamegraph() {
    let dir = std::env::temp_dir().join("poat_args_smoke");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let ledger = dir.join("ledger.poatlgr");
    let flame = dir.join("profile.folded");

    for _ in 0..2 {
        let out = repro(&[
            "fig9a",
            "--quick",
            "--ledger",
            ledger.to_str().unwrap(),
            "--flame",
            flame.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "repro failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    // The collapsed-stack export is inferno format: `a;b;c <nanos>`.
    let folded = std::fs::read_to_string(&flame).unwrap();
    assert!(!folded.trim().is_empty(), "flamegraph export is non-empty");
    for line in folded.lines() {
        let (stack, nanos) = line.rsplit_once(' ').expect("stack <value> lines");
        assert!(!stack.is_empty());
        nanos.parse::<u64>().expect("numeric self-time");
    }
    assert!(
        folded.lines().any(|l| l.contains(';')),
        "at least one multi-frame path (parent;child)"
    );

    let out = repro(&["report", "--ledger", ledger.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "repro report failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("2 records in"),
        "report sees both runs:\n{stdout}"
    );
    assert!(stdout.contains("run000001") && stdout.contains("run000002"));

    // A named metric is queryable and diffable across the two runs.
    let out = repro(&[
        "report",
        "--ledger",
        ledger.to_str().unwrap(),
        "--metric",
        "sim.result.polb_misses",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("delta run000001 -> run000002"),
        "metric view diffs the last two runs:\n{stdout}"
    );
}

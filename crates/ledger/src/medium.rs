// SPDX-License-Identifier: MIT OR Apache-2.0
//! Storage media the ledger appends to: a plain file, or a region inside
//! a `poat-pmem` pool.
//!
//! Both expose the same linear byte space to the scanner ([`Medium`]),
//! so there is exactly one recovery code path. The interesting
//! implementation is [`PmemMedium`]: it stores the ledger inside a
//! persistent-memory object and orders its persists so that a crash
//! anywhere inside an append leaves the previously-committed prefix
//! intact — the record bytes are persisted *before* the tail-length word
//! that makes them visible, which is the same commit discipline the
//! runtime's undo log uses. Because every write goes through
//! [`poat_pmem::Runtime::write_bytes_at`] / `persist`, the crash-point
//! sweep can enumerate and inject faults at every `clwb`/`fence` of a
//! ledger append (see `tests/crash_sweep.rs`).

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use poat_core::ObjectId;
use poat_pmem::Runtime;

use crate::LedgerError;

/// A linear, append-only byte space with durable appends and positioned
/// reads — what [`crate::Ledger`] scans and extends.
pub trait Medium {
    /// Current logical length in bytes.
    ///
    /// # Errors
    ///
    /// Underlying medium failures.
    fn len(&mut self) -> Result<u64, LedgerError>;

    /// True when the medium holds no bytes yet.
    ///
    /// # Errors
    ///
    /// Underlying medium failures.
    fn is_empty(&mut self) -> Result<bool, LedgerError> {
        Ok(self.len()? == 0)
    }

    /// Fills `buf` from logical offset `off`.
    ///
    /// # Errors
    ///
    /// Reads past [`len`](Self::len) or underlying medium failures.
    fn read_at(&mut self, off: u64, buf: &mut [u8]) -> Result<(), LedgerError>;

    /// Appends `data` at the end; the bytes are durable when this
    /// returns.
    ///
    /// # Errors
    ///
    /// Underlying medium failures — on a [`PmemMedium`] this includes
    /// injected crashes from an armed fault plan.
    fn append(&mut self, data: &[u8]) -> Result<(), LedgerError>;

    /// Shrinks the logical length to `len` (drops a torn tail).
    ///
    /// # Errors
    ///
    /// Underlying medium failures.
    fn truncate(&mut self, len: u64) -> Result<(), LedgerError>;
}

// ---------------------------------------------------------------------------
// File medium
// ---------------------------------------------------------------------------

/// A ledger stored in an ordinary file; appends are made durable with
/// `sync_data`.
pub struct FileMedium {
    file: File,
    path: PathBuf,
}

impl FileMedium {
    /// Opens (creating if missing, along with the parent directory) the
    /// file at `path`.
    ///
    /// # Errors
    ///
    /// File open/create failures.
    pub fn open(path: &Path) -> Result<Self, LedgerError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(FileMedium {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Opens the file at `path` for reading only — no create, no parent
    /// directory creation, and any later [`Medium::append`] /
    /// [`Medium::truncate`] fails at the OS layer. Pair with
    /// [`crate::OpenMode::ReadOnly`] so the scanner never attempts those
    /// writes in the first place.
    ///
    /// # Errors
    ///
    /// File open failures (including the file not existing).
    pub fn open_read_only(path: &Path) -> Result<Self, LedgerError> {
        let file = OpenOptions::new().read(true).open(path)?;
        Ok(FileMedium {
            file,
            path: path.to_path_buf(),
        })
    }

    /// The path this medium was opened at.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Medium for FileMedium {
    fn len(&mut self) -> Result<u64, LedgerError> {
        Ok(self.file.metadata()?.len())
    }

    fn read_at(&mut self, off: u64, buf: &mut [u8]) -> Result<(), LedgerError> {
        self.file.seek(SeekFrom::Start(off))?;
        self.file.read_exact(buf)?;
        Ok(())
    }

    fn append(&mut self, data: &[u8]) -> Result<(), LedgerError> {
        self.file.seek(SeekFrom::End(0))?;
        self.file.write_all(data)?;
        self.file.sync_data()?;
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> Result<(), LedgerError> {
        self.file.set_len(len)?;
        self.file.sync_data()?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Persistent-memory medium
// ---------------------------------------------------------------------------

/// Byte offset of the tail-length word inside the backing object.
const TAIL_WORD_OFF: u32 = 0;
/// Byte offset where the logical byte space starts (after the tail word).
const DATA_OFF: u32 = 8;

/// A ledger region inside a `poat-pmem` object.
///
/// Object layout: a `u64` *tail word* at offset 0 holding the logical
/// length, then the logical bytes from offset 8. An append writes and
/// persists the record bytes first, then writes and persists the tail
/// word — so the record becomes visible atomically, and a crash between
/// the two persists leaves the ledger exactly as before the append.
pub struct PmemMedium<'rt> {
    rt: &'rt mut Runtime,
    oid: ObjectId,
    capacity: u64,
}

impl<'rt> PmemMedium<'rt> {
    /// Attaches to the ledger object `oid` (freshly `pmalloc`ed or
    /// recovered). `capacity` is the object's byte size; appends beyond
    /// it fail. A fresh object must be zero-filled (pmalloc guarantees
    /// this), which reads as an empty medium.
    pub fn attach(rt: &'rt mut Runtime, oid: ObjectId, capacity: u64) -> Self {
        PmemMedium { rt, oid, capacity }
    }

    fn tail(&mut self) -> Result<u64, LedgerError> {
        let r = self.rt.deref(self.oid, None)?;
        let (tail, _) = self.rt.read_u64_at(&r, TAIL_WORD_OFF)?;
        Ok(tail)
    }

    fn set_tail(&mut self, tail: u64) -> Result<(), LedgerError> {
        let r = self.rt.deref(self.oid, None)?;
        self.rt.write_u64_at(&r, TAIL_WORD_OFF, tail)?;
        // faultpoint: ledger crash-sweep (tail-word commit publish)
        self.rt.persist(self.oid, 8)?;
        Ok(())
    }
}

impl Medium for PmemMedium<'_> {
    fn len(&mut self) -> Result<u64, LedgerError> {
        self.tail()
    }

    fn read_at(&mut self, off: u64, buf: &mut [u8]) -> Result<(), LedgerError> {
        let tail = self.tail()?;
        if off + buf.len() as u64 > tail {
            return Err(LedgerError::Corrupt("read past persisted tail"));
        }
        let r = self.rt.deref(self.oid, None)?;
        self.rt.read_bytes_at(&r, DATA_OFF + off as u32, buf)?;
        Ok(())
    }

    fn append(&mut self, data: &[u8]) -> Result<(), LedgerError> {
        let tail = self.tail()?;
        let new_tail = tail + data.len() as u64;
        if DATA_OFF as u64 + new_tail > self.capacity {
            return Err(LedgerError::Corrupt("ledger region full"));
        }
        let r = self.rt.deref(self.oid, None)?;
        self.rt.write_bytes_at(&r, DATA_OFF + tail as u32, data)?;
        // Record bytes first: persist [0, DATA_OFF + new_tail) — this
        // covers the (still-old) tail word too, which is harmless, and
        // crucially fences the record bytes before the commit below.
        // faultpoint: ledger crash-sweep (record bytes durable before tail)
        self.rt.persist(self.oid, DATA_OFF as u64 + new_tail)?;
        // Commit: advance the tail word and persist it.
        self.set_tail(new_tail)?;
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> Result<(), LedgerError> {
        // The tail word is authoritative: shrinking it drops the tail.
        self.set_tail(len)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{open_file, Ledger, RecordData};
    use poat_pmem::{Runtime, RuntimeConfig};

    fn record(n: u64) -> RecordData {
        let mut rec = RecordData {
            timestamp_unix_secs: 1_700_000_000,
            elapsed_micros: n,
            command: "ledger-test".into(),
            scale: "quick".into(),
            git_revision: "feedface".into(),
            ..RecordData::default()
        };
        rec.counters.insert("t.ledger.value".into(), n);
        rec
    }

    #[test]
    fn pmem_medium_roundtrips_through_recovery() {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let pool = rt.pool_create("ledger", 1 << 20).unwrap();
        let oid = rt.pmalloc(pool, 1 << 16).unwrap();
        {
            let medium = PmemMedium::attach(&mut rt, oid, 1 << 16);
            let mut ledger = Ledger::open(medium).unwrap();
            assert_eq!(ledger.append(record(1)).unwrap(), 1);
            assert_eq!(ledger.append(record(2)).unwrap(), 2);
        }
        // Crash + recover the device, then re-open the ledger region.
        let mut rt = rt.crash_and_recover(42).unwrap();
        let medium = PmemMedium::attach(&mut rt, oid, 1 << 16);
        let ledger = Ledger::open(medium).unwrap();
        assert_eq!(ledger.scan_report().recovered, 2);
        assert_eq!(ledger.records()[1].data.metric("t.ledger.value"), Some(2));
    }

    #[test]
    fn file_medium_reports_len_and_reads_back() {
        let dir = std::env::temp_dir().join(format!("poat_ledger_fm_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fm.poatlgr");
        let _ = std::fs::remove_file(&path);
        let mut m = FileMedium::open(&path).unwrap();
        assert!(m.is_empty().unwrap());
        m.append(b"POATLGR1abc").unwrap();
        assert_eq!(m.len().unwrap(), 11);
        let mut buf = [0u8; 3];
        m.read_at(8, &mut buf).unwrap();
        assert_eq!(&buf, b"abc");
        m.truncate(8).unwrap();
        assert_eq!(m.len().unwrap(), 8);
        drop(m);
        let _ = open_file(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
    }
}

// SPDX-License-Identifier: MIT OR Apache-2.0
//! # poat-ledger
//!
//! The durable run ledger: an append-only log of one record per
//! `repro`/bench run, so the repository's metric trajectory survives the
//! process instead of being clobbered by the next `results_full.json`.
//! `repro report` queries it, `bench-compare --ledger` reads baselines
//! out of it, and the crash-point sweep injects faults *into* it — the
//! ledger dogfoods the same `crates/pmem` write/persist primitives the
//! paper's runtime exposes to applications.
//!
//! ## On-disk format (`POATLGR1`)
//!
//! The byte stream starts with an 8-byte magic and is followed by
//! self-delimiting record frames, in the same LEB128/columnar discipline
//! as the `POATTRC2` trace format:
//!
//! ```text
//! magic "POATLGR1" (8 B)
//! frame*:  payload len (u32 LE) | seq (u64 LE) | FNV-1a64 of payload (u64 LE)
//!          payload (len B, LEB128-encoded fields; see `record`)
//! ```
//!
//! Counter/gauge/histogram names inside a payload are sorted and
//! front-coded (shared-prefix length + suffix), which compresses the
//! dot-separated metric namespace by roughly 3× — see
//! [`record::RecordData`].
//!
//! ## Recovery contract
//!
//! [`Ledger::open`] scans frames sequentially and accepts a record only
//! while (a) the frame header is sane, (b) the whole payload is present,
//! (c) the checksum matches, (d) the sequence number is exactly
//! `previous + 1`, and (e) the payload decodes. The first violation ends
//! the scan: everything before it is recovered, everything after it is a
//! *torn tail* and is truncated away so the next append cannot land
//! behind garbage. On a [`PmemMedium`] the tail-length word is persisted
//! strictly after the record bytes, so a crash mid-append simply leaves
//! the record invisible — the crash-sweep smoke in `tests/` asserts no
//! fully-persisted record is ever lost and no torn tail is ever served.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod medium;
pub mod record;

use poat_telemetry::global;

pub use medium::{FileMedium, Medium, PmemMedium};
pub use record::{HistStat, RecordData};

use std::fmt;

/// Magic bytes opening every *run-ledger* byte stream (the catalog uses
/// the sibling `POATCAT1`; see [`LogPayload::MAGIC`]).
pub const MAGIC: &[u8; 8] = b"POATLGR1";

/// Frame header bytes: payload length (u32) + seq (u64) + checksum (u64).
pub const FRAME_HEADER_BYTES: u64 = 4 + 8 + 8;

/// Upper bound on one payload; larger lengths are treated as corruption
/// (a torn length field must not make the scanner allocate gigabytes).
pub const MAX_PAYLOAD_BYTES: u32 = 16 << 20;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a 64 over `bytes` — the frame checksum (same digest family the
/// crash-sweep verifier uses for pool state).
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Errors opening, appending to, or decoding a ledger.
#[derive(Debug)]
pub enum LedgerError {
    /// The stream does not start with [`MAGIC`].
    BadMagic,
    /// A payload declared a schema version newer than this binary.
    BadVersion(u64),
    /// A structurally impossible payload (bad varint, string, or count).
    Corrupt(&'static str),
    /// An underlying file I/O failure.
    Io(std::io::Error),
    /// An underlying persistent-memory runtime failure.
    Pmem(poat_pmem::PmemError),
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::BadMagic => write!(f, "not a poat ledger (bad magic)"),
            LedgerError::BadVersion(v) => {
                write!(f, "ledger record schema {v} is newer than this binary")
            }
            LedgerError::Corrupt(what) => write!(f, "corrupt ledger record: {what}"),
            LedgerError::Io(e) => write!(f, "i/o: {e}"),
            LedgerError::Pmem(e) => write!(f, "pmem: {e}"),
        }
    }
}

impl std::error::Error for LedgerError {}

impl From<std::io::Error> for LedgerError {
    fn from(e: std::io::Error) -> Self {
        LedgerError::Io(e)
    }
}

impl From<poat_pmem::PmemError> for LedgerError {
    fn from(e: poat_pmem::PmemError) -> Self {
        LedgerError::Pmem(e)
    }
}

/// The payload type a [`Log`] stores: its stream magic, its metric
/// namespace, and its byte-level codec.
///
/// Implementations exist for the run-ledger [`RecordData`] (`POATLGR1`)
/// and the run catalog's record type in `crates/catalog` (`POATCAT1`).
/// Everything else about the two formats — frame headers, checksums,
/// sequence discipline, recovery, and crash-safe media — is shared
/// through [`Log`], so there is exactly one scanner to prove correct.
pub trait LogPayload: Sized {
    /// 8-byte magic opening the byte stream of this payload's streams.
    const MAGIC: &'static [u8; 8];
    /// Counter bumped per durably appended record (docs/METRICS.md).
    const METRIC_RECORDS_APPENDED: &'static str;
    /// Counter of framed bytes those appends committed.
    const METRIC_BYTES_APPENDED: &'static str;
    /// Counter of fully-persisted records recovered by opening scans.
    const METRIC_RECORDS_RECOVERED: &'static str;
    /// Counter of torn tails found (and, in repair mode, truncated) by
    /// opening scans.
    const METRIC_TORN_TAILS: &'static str;

    /// Serializes the payload (the bytes the frame checksum covers).
    fn encode(&self) -> Vec<u8>;

    /// Decodes a payload produced by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// [`LedgerError::BadVersion`] / [`LedgerError::Corrupt`] per the
    /// payload's own schema rules.
    fn decode(bytes: &[u8]) -> Result<Self, LedgerError>;
}

/// One recovered record: its sequence number plus the decoded payload.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame<P> {
    /// 1-based, strictly consecutive sequence number.
    pub seq: u64,
    /// The decoded record payload.
    pub data: P,
}

impl<P> Frame<P> {
    /// Stable run identifier derived from the sequence number
    /// (`run000007`); artifact files are suffixed with it.
    pub fn run_id(&self) -> String {
        run_id(self.seq)
    }
}

/// One recovered run-ledger record (`POATLGR1` payload).
pub type LedgerRecord = Frame<RecordData>;

/// Formats a sequence number as the canonical run id (`run000007`).
pub fn run_id(seq: u64) -> String {
    format!("run{seq:06}")
}

/// What [`Ledger::open`] found while scanning the medium.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScanReport {
    /// Fully-persisted records recovered.
    pub recovered: usize,
    /// Bytes of torn/garbage tail rejected (0 on a clean stream).
    pub torn_tail_bytes: u64,
    /// Human-readable reason the scan stopped early, if it did.
    pub torn_reason: Option<String>,
}

/// How [`Log::open_with`] treats the medium.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpenMode {
    /// Read-write: an empty medium is formatted with the magic, a torn
    /// tail is truncated away, and appends are allowed. This is the
    /// single-writer mode.
    Repair,
    /// Read-only: the medium is never written — an empty medium reads as
    /// an empty log, a torn tail is reported but left in place, and
    /// appends fail. Safe for observers (`repro jobs`,
    /// `repro catalog query`) polling a store another process is
    /// actively appending to: a reader that raced an in-flight append
    /// must not truncate the writer's half-written frame.
    ReadOnly,
}

/// An open append-only record log over some [`Medium`]: the recovered
/// records plus the append position. [`Ledger`] and the run catalog are
/// both instances of this type with different payloads.
pub struct Log<M: Medium, P: LogPayload> {
    medium: M,
    records: Vec<Frame<P>>,
    scan: ScanReport,
    /// Logical length of the valid region (next append offset).
    valid_len: u64,
    read_only: bool,
}

/// The run ledger: a [`Log`] of [`RecordData`] payloads (`POATLGR1`).
pub type Ledger<M> = Log<M, RecordData>;

impl<M: Medium, P: LogPayload> Log<M, P> {
    /// Opens (and if empty, formats) the log on `medium`, scanning and
    /// validating every record per the crate-level recovery contract. A
    /// torn tail is truncated away so subsequent appends are readable.
    ///
    /// # Errors
    ///
    /// [`LedgerError::BadMagic`] when the stream is non-empty but does
    /// not start with [`LogPayload::MAGIC`]; medium errors pass through.
    /// Torn or corrupt *tails* are not errors — they are reported in
    /// [`scan_report`](Self::scan_report) and skipped.
    pub fn open(medium: M) -> Result<Self, LedgerError> {
        Self::open_with(medium, OpenMode::Repair)
    }

    /// [`open`](Self::open) in the given [`OpenMode`]; read-only opens
    /// never write to the medium (no formatting, no tail truncation).
    ///
    /// # Errors
    ///
    /// As [`open`](Self::open).
    pub fn open_with(mut medium: M, mode: OpenMode) -> Result<Self, LedgerError> {
        let read_only = mode == OpenMode::ReadOnly;
        let len = medium.len()?;
        if len == 0 {
            if !read_only {
                medium.append(P::MAGIC)?;
            }
            return Ok(Log {
                medium,
                records: Vec::new(),
                scan: ScanReport::default(),
                valid_len: if read_only { 0 } else { 8 },
                read_only,
            });
        }
        if len < 8 {
            return Err(LedgerError::BadMagic);
        }
        let mut magic = [0u8; 8];
        medium.read_at(0, &mut magic)?;
        if &magic != P::MAGIC {
            return Err(LedgerError::BadMagic);
        }
        let mut records = Vec::new();
        let mut scan = ScanReport::default();
        let mut pos = 8u64;
        let torn = |reason: String, at: u64, scan: &mut ScanReport| {
            scan.torn_tail_bytes = len - at;
            scan.torn_reason = Some(reason);
        };
        loop {
            if pos == len {
                break;
            }
            if pos + FRAME_HEADER_BYTES > len {
                torn("frame header truncated".to_string(), pos, &mut scan);
                break;
            }
            let mut header = [0u8; FRAME_HEADER_BYTES as usize];
            medium.read_at(pos, &mut header)?;
            let payload_len = u32::from_le_bytes(header[0..4].try_into().expect("4-byte slice"));
            let seq = u64::from_le_bytes(header[4..12].try_into().expect("8-byte slice"));
            let crc = u64::from_le_bytes(header[12..20].try_into().expect("8-byte slice"));
            if payload_len == 0 || payload_len > MAX_PAYLOAD_BYTES {
                torn(
                    format!("implausible payload length {payload_len}"),
                    pos,
                    &mut scan,
                );
                break;
            }
            if pos + FRAME_HEADER_BYTES + payload_len as u64 > len {
                torn("payload truncated".to_string(), pos, &mut scan);
                break;
            }
            let expected_seq = records.last().map(|r: &Frame<P>| r.seq + 1).unwrap_or(1);
            if seq != expected_seq {
                torn(
                    format!("sequence break (got {seq}, expected {expected_seq})"),
                    pos,
                    &mut scan,
                );
                break;
            }
            let mut payload = vec![0u8; payload_len as usize];
            medium.read_at(pos + FRAME_HEADER_BYTES, &mut payload)?;
            if checksum(&payload) != crc {
                torn("checksum mismatch".to_string(), pos, &mut scan);
                break;
            }
            match P::decode(&payload) {
                Ok(data) => records.push(Frame { seq, data }),
                Err(e) => {
                    torn(format!("payload undecodable: {e}"), pos, &mut scan);
                    break;
                }
            }
            pos += FRAME_HEADER_BYTES + payload_len as u64;
        }
        scan.recovered = records.len();
        if scan.torn_tail_bytes > 0 && !read_only {
            medium.truncate(pos)?;
            global().counter(P::METRIC_TORN_TAILS).inc();
        }
        global()
            .counter(P::METRIC_RECORDS_RECOVERED)
            .add(records.len() as u64);
        Ok(Log {
            medium,
            records,
            scan,
            valid_len: pos,
            read_only,
        })
    }

    /// Appends one record durably (the medium persists before this
    /// returns) and returns its assigned sequence number.
    ///
    /// # Errors
    ///
    /// Medium write/persist failures — including the injected crashes the
    /// fault-sweep arms, which surface as [`LedgerError::Pmem`] — and
    /// [`LedgerError::Corrupt`] on a log opened read-only.
    pub fn append(&mut self, data: P) -> Result<u64, LedgerError> {
        if self.read_only {
            return Err(LedgerError::Corrupt("log opened read-only"));
        }
        let seq = self.records.last().map(|r| r.seq + 1).unwrap_or(1);
        let payload = data.encode();
        debug_assert!(payload.len() as u64 <= MAX_PAYLOAD_BYTES as u64);
        let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES as usize + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&seq.to_le_bytes());
        frame.extend_from_slice(&checksum(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.medium.append(&frame)?;
        self.valid_len += frame.len() as u64;
        global().counter(P::METRIC_RECORDS_APPENDED).inc();
        global()
            .counter(P::METRIC_BYTES_APPENDED)
            .add(frame.len() as u64);
        self.records.push(Frame { seq, data });
        Ok(seq)
    }

    /// All recovered + appended records, ascending by sequence number.
    pub fn records(&self) -> &[Frame<P>] {
        &self.records
    }

    /// The newest record, if any.
    pub fn last(&self) -> Option<&Frame<P>> {
        self.records.last()
    }

    /// The record with sequence number `seq`.
    pub fn get(&self, seq: u64) -> Option<&Frame<P>> {
        self.records.iter().find(|r| r.seq == seq)
    }

    /// What the opening scan found (recovered count, torn tail).
    pub fn scan_report(&self) -> &ScanReport {
        &self.scan
    }

    /// Logical bytes of the valid region (magic + accepted frames).
    pub fn valid_len(&self) -> u64 {
        self.valid_len
    }

    /// Whether this log was opened [`OpenMode::ReadOnly`].
    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    /// Consumes the log, returning the medium (tests re-open it).
    pub fn into_medium(self) -> M {
        self.medium
    }
}

/// Opens the ledger file at `path` (creating it, and its parent
/// directory, when missing).
///
/// # Errors
///
/// File I/O failures and the scan errors of [`Ledger::open`].
pub fn open_file(path: &std::path::Path) -> Result<Ledger<FileMedium>, LedgerError> {
    Ledger::open(FileMedium::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn sample_record(n: u64) -> RecordData {
        let mut counters = BTreeMap::new();
        counters.insert("sim.result.polb_misses".to_string(), 100 + n);
        counters.insert("sim.result.polb_hits".to_string(), 9000 + n);
        let mut gauges = BTreeMap::new();
        gauges.insert("core.polb.entries".to_string(), 32);
        let mut histograms = BTreeMap::new();
        histograms.insert(
            "span.pot_walk.nanos".to_string(),
            HistStat {
                count: 10,
                sum: 1000,
                max: 400,
                p50: 90,
                p90: 300,
                p99: 400,
            },
        );
        RecordData {
            timestamp_unix_secs: 1_700_000_000 + n,
            elapsed_micros: 123_456,
            command: "fig9a".to_string(),
            scale: "quick".to_string(),
            git_revision: "deadbeef".to_string(),
            counters,
            gauges,
            histograms,
            extra: Vec::new(),
        }
    }

    #[test]
    fn append_reopen_roundtrip() {
        let dir = std::env::temp_dir().join(format!("poat_ledger_rt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.poatlgr");
        let _ = std::fs::remove_file(&path);
        {
            let mut l = open_file(&path).unwrap();
            assert_eq!(l.append(sample_record(0)).unwrap(), 1);
            assert_eq!(l.append(sample_record(1)).unwrap(), 2);
        }
        let l = open_file(&path).unwrap();
        assert_eq!(l.scan_report().recovered, 2);
        assert_eq!(l.scan_report().torn_tail_bytes, 0);
        assert_eq!(l.records().len(), 2);
        assert_eq!(l.records()[0].seq, 1);
        assert_eq!(l.records()[1].data, sample_record(1));
        assert_eq!(l.records()[1].run_id(), "run000002");
        assert_eq!(
            l.records()[0].data.metric("sim.result.polb_misses"),
            Some(100)
        );
        assert_eq!(
            l.records()[0].data.metric("span.pot_walk.nanos:p90"),
            Some(300)
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_rejected_and_truncated() {
        let dir = std::env::temp_dir().join(format!("poat_ledger_torn_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.poatlgr");
        let _ = std::fs::remove_file(&path);
        {
            let mut l = open_file(&path).unwrap();
            l.append(sample_record(0)).unwrap();
            l.append(sample_record(1)).unwrap();
        }
        let clean_len = std::fs::metadata(&path).unwrap().len();
        // Simulate a torn append: a partial frame of garbage at the tail.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(&[0xAB; 13]).unwrap();
        }
        let l = open_file(&path).unwrap();
        assert_eq!(l.scan_report().recovered, 2, "intact prefix recovered");
        assert_eq!(l.scan_report().torn_tail_bytes, 13);
        assert!(l.scan_report().torn_reason.is_some());
        drop(l);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            clean_len,
            "torn tail truncated away"
        );
        // And the ledger keeps working after truncation.
        let mut l = open_file(&path).unwrap();
        assert_eq!(l.append(sample_record(2)).unwrap(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_cut_inside_a_record_is_ignored_on_recovery() {
        // A crash mid-append leaves a *prefix* of a real frame, not
        // appended garbage: the header may be fully intact while the
        // payload is cut short. Recovery must keep every whole record
        // before the cut and drop the partial frame.
        let dir = std::env::temp_dir().join(format!("poat_ledger_midcut_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("midcut.poatlgr");
        let _ = std::fs::remove_file(&path);
        let two_len;
        {
            let mut l = open_file(&path).unwrap();
            l.append(sample_record(0)).unwrap();
            l.append(sample_record(1)).unwrap();
            two_len = std::fs::metadata(&path).unwrap().len();
            l.append(sample_record(2)).unwrap();
        }
        let full_len = std::fs::metadata(&path).unwrap().len();
        // Cut inside the third frame's payload (header intact, payload
        // short) — the hardest case: length and checksum fields parse
        // but the payload bytes run out.
        let cut = two_len + (full_len - two_len) / 2;
        assert!(cut > two_len && cut < full_len);
        {
            let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            f.set_len(cut).unwrap();
        }
        let l = open_file(&path).unwrap();
        assert_eq!(l.scan_report().recovered, 2, "whole records survive");
        assert_eq!(l.scan_report().torn_tail_bytes, cut - two_len);
        assert_eq!(l.records()[1].data, sample_record(1), "prefix byte-exact");
        drop(l);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            two_len,
            "repair truncates back to the last whole record"
        );
        // The sequence continues from the surviving prefix.
        let mut l = open_file(&path).unwrap();
        assert_eq!(l.append(sample_record(3)).unwrap(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_payload_is_rejected() {
        let dir = std::env::temp_dir().join(format!("poat_ledger_crc_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("crc.poatlgr");
        let _ = std::fs::remove_file(&path);
        {
            let mut l = open_file(&path).unwrap();
            l.append(sample_record(0)).unwrap();
        }
        // Flip one payload byte: the checksum must catch it.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let l = open_file(&path).unwrap();
        assert_eq!(l.scan_report().recovered, 0);
        assert!(l
            .scan_report()
            .torn_reason
            .as_deref()
            .unwrap()
            .contains("checksum"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn non_ledger_file_is_bad_magic() {
        let dir = std::env::temp_dir().join(format!("poat_ledger_magic_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("magic.poatlgr");
        std::fs::write(&path, b"definitely not a ledger").unwrap();
        match open_file(&path) {
            Err(LedgerError::BadMagic) => {}
            other => panic!("expected BadMagic, got {:?}", other.map(|_| ())),
        }
        std::fs::remove_file(&path).unwrap();
    }
}

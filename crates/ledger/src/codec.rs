// SPDX-License-Identifier: MIT OR Apache-2.0
//! Shared byte-level codec for log payloads: LEB128 varints,
//! length-prefixed strings, front-coded name sequences, and a bounds-
//! checked decode cursor.
//!
//! Both durable stores in this repository — the run ledger
//! (`POATLGR1`, [`crate::record::RecordData`]) and the run catalog
//! (`POATCAT1`, `crates/catalog`) — encode their payloads through these
//! primitives, so the two formats stay siblings: same varint discipline,
//! same corruption surface, one set of torture tests.

use crate::LedgerError;

/// Appends `v` as an LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends `s` as a varint byte length followed by the UTF-8 bytes.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Writes `name` as (shared-prefix byte length with `prev`, suffix) —
/// front-coding, worth ~3× on sorted dot-separated metric namespaces.
pub fn put_front_coded(out: &mut Vec<u8>, prev: &str, name: &str) {
    let shared = prev
        .as_bytes()
        .iter()
        .zip(name.as_bytes())
        .take_while(|(a, b)| a == b)
        .count();
    // Clamp to a char boundary of `name` so the suffix stays valid UTF-8.
    let mut shared = shared.min(name.len());
    while !name.is_char_boundary(shared) {
        shared -= 1;
    }
    put_varint(out, shared as u64);
    put_str(out, &name[shared..]);
}

/// A bounds-checked decoding position over a payload byte slice. Every
/// read is validated; structural violations surface as
/// [`LedgerError::Corrupt`] rather than panics.
pub struct Cursor<'a> {
    /// The payload being decoded.
    pub bytes: &'a [u8],
    /// Current read offset.
    pub pos: usize,
}

impl<'a> Cursor<'a> {
    /// Starts a cursor at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    /// Consumes and returns the next `n` bytes.
    ///
    /// # Errors
    ///
    /// [`LedgerError::Corrupt`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], LedgerError> {
        if self.pos + n > self.bytes.len() {
            return Err(LedgerError::Corrupt("field extends past payload"));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Decodes one LEB128 varint.
    ///
    /// # Errors
    ///
    /// [`LedgerError::Corrupt`] on truncation or u64 overflow.
    pub fn varint(&mut self) -> Result<u64, LedgerError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let [byte] = *self.take(1)? else {
                return Err(LedgerError::Corrupt("varint truncated"));
            };
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(LedgerError::Corrupt("varint overflows u64"));
            }
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Decodes one length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`LedgerError::Corrupt`] on truncation or invalid UTF-8.
    pub fn string(&mut self) -> Result<String, LedgerError> {
        let len = self.varint()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| LedgerError::Corrupt("string not UTF-8"))
    }

    /// Decodes one front-coded name given its predecessor.
    ///
    /// # Errors
    ///
    /// [`LedgerError::Corrupt`] when the shared-prefix length exceeds
    /// `prev` or falls inside a UTF-8 sequence.
    pub fn front_coded(&mut self, prev: &str) -> Result<String, LedgerError> {
        let shared = self.varint()? as usize;
        if shared > prev.len() || !prev.is_char_boundary(shared) {
            return Err(LedgerError::Corrupt("front-coding prefix out of range"));
        }
        let suffix = self.string()?;
        let mut name = String::with_capacity(shared + suffix.len());
        name.push_str(&prev[..shared]);
        name.push_str(&suffix);
        Ok(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_extremes() {
        for v in [0u64, 1, 127, 128, 300, u64::MAX / 2, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut cur = Cursor::new(&buf);
            assert_eq!(cur.varint().unwrap(), v, "value {v}");
            assert_eq!(cur.pos, buf.len());
        }
    }

    #[test]
    fn front_coding_roundtrips_shared_prefixes() {
        let names = ["core.polb.hits", "core.polb.misses", "core.pot.walks"];
        let mut buf = Vec::new();
        let mut prev = "";
        for n in &names {
            put_front_coded(&mut buf, prev, n);
            prev = n;
        }
        let mut cur = Cursor::new(&buf);
        let mut prev = String::new();
        for n in &names {
            let got = cur.front_coded(&prev).unwrap();
            assert_eq!(&got, n);
            prev = got;
        }
        assert_eq!(cur.pos, buf.len());
    }

    #[test]
    fn string_rejects_bad_utf8() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert!(Cursor::new(&buf).string().is_err());
    }
}

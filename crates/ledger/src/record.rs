// SPDX-License-Identifier: MIT OR Apache-2.0
//! The ledger record payload: what one run writes, and its LEB128
//! encoding.
//!
//! A [`RecordData`] is a compact, self-contained projection of one
//! [`poat_telemetry::MetricsSnapshot`]: the run manifest, every counter
//! and gauge, and the summary statistics of every histogram (the log2
//! buckets themselves stay in the JSON artifacts — the ledger keeps the
//! queryable surface). Fields are LEB128 varints; metric names are
//! sorted and *front-coded* (each name stores only the byte length it
//! shares with its predecessor plus the differing suffix), which is
//! worth ~3× on the dot-separated `layer.component.quantity` namespace.
//!
//! The `extra` field carries an opaque blob for subsystem-specific
//! payloads: `bench-run --ledger` stores its full `BenchReport` JSON
//! there so `bench-compare --ledger` can reconstruct a baseline without
//! a separate file.

use std::collections::BTreeMap;

use poat_telemetry::MetricsSnapshot;

use crate::codec::{put_front_coded, put_str, put_varint, Cursor};
use crate::{LedgerError, LogPayload};

/// Version of the record payload layout; bump on breaking change.
pub const RECORD_SCHEMA_VERSION: u64 = 1;

/// Summary statistics of one histogram at snapshot time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistStat {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

/// One run's decoded ledger payload.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecordData {
    /// Wall-clock seconds since the Unix epoch when the record was cut.
    pub timestamp_unix_secs: u64,
    /// Run duration in microseconds.
    pub elapsed_micros: u64,
    /// The command or artifact selection that produced the run.
    pub command: String,
    /// Experiment scale ("quick" or "full").
    pub scale: String,
    /// Git revision of the source tree, or "unknown".
    pub git_revision: String,
    /// All counters, by name.
    pub counters: BTreeMap<String, u64>,
    /// All gauges, by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram summaries, by name.
    pub histograms: BTreeMap<String, HistStat>,
    /// Opaque subsystem payload (bench stores its report JSON here).
    pub extra: Vec<u8>,
}

impl RecordData {
    /// Projects a metrics snapshot into a record payload. `timestamp` is
    /// seconds since the Unix epoch (the caller reads the system clock).
    pub fn from_snapshot(snap: &MetricsSnapshot, timestamp_unix_secs: u64) -> Self {
        RecordData {
            timestamp_unix_secs,
            elapsed_micros: (snap.manifest.elapsed_seconds * 1e6) as u64,
            command: snap.manifest.command.clone(),
            scale: snap.manifest.scale.clone(),
            git_revision: snap.manifest.git_revision.clone(),
            counters: snap.counters.clone(),
            gauges: snap.gauges.clone(),
            histograms: snap
                .histograms
                .iter()
                .map(|(name, h)| {
                    (
                        name.clone(),
                        HistStat {
                            count: h.count,
                            sum: h.sum,
                            max: h.max,
                            p50: h.p50,
                            p90: h.p90,
                            p99: h.p99,
                        },
                    )
                })
                .collect(),
            extra: Vec::new(),
        }
    }

    /// Looks up a metric value by name for report queries: counters
    /// first, then gauges; histogram fields are addressed as
    /// `name:stat` where `stat` is one of `count`, `sum`, `max`, `mean`,
    /// `p50`, `p90`, `p99` (`mean` is `sum/count`, rounded down).
    ///
    /// A base name with no exact match rolls up its labelled series:
    /// querying `sim.result.polb_misses` sums every
    /// `sim.result.polb_misses{…}` counter (then gauge) in the record.
    pub fn metric(&self, name: &str) -> Option<u64> {
        if let Some(v) = self.counters.get(name) {
            return Some(*v);
        }
        if let Some(v) = self.gauges.get(name) {
            return Some(*v);
        }
        if !name.contains(['{', ':']) {
            for series in [&self.counters, &self.gauges] {
                let mut sum = 0u64;
                let mut any = false;
                for (k, v) in series {
                    if k.strip_prefix(name)
                        .is_some_and(|rest| rest.starts_with('{'))
                    {
                        sum = sum.saturating_add(*v);
                        any = true;
                    }
                }
                if any {
                    return Some(sum);
                }
            }
        }
        let (base, stat) = name.rsplit_once(':')?;
        let h = self.histograms.get(base)?;
        match stat {
            "count" => Some(h.count),
            "sum" => Some(h.sum),
            "max" => Some(h.max),
            "mean" => Some(if h.count == 0 { 0 } else { h.sum / h.count }),
            "p50" => Some(h.p50),
            "p90" => Some(h.p90),
            "p99" => Some(h.p99),
            _ => None,
        }
    }

    /// Every queryable metric name in this record, sorted: counters and
    /// gauges verbatim, histograms as their `name:p50`-style fields.
    pub fn metric_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.counters.keys().cloned().collect();
        names.extend(self.gauges.keys().cloned());
        for h in self.histograms.keys() {
            for stat in ["count", "sum", "max", "mean", "p50", "p90", "p99"] {
                names.push(format!("{h}:{stat}"));
            }
        }
        names.sort();
        names
    }

    /// Serializes the payload (the bytes the frame checksum covers).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1024);
        put_varint(&mut out, RECORD_SCHEMA_VERSION);
        put_varint(&mut out, self.timestamp_unix_secs);
        put_varint(&mut out, self.elapsed_micros);
        put_str(&mut out, &self.command);
        put_str(&mut out, &self.scale);
        put_str(&mut out, &self.git_revision);
        put_varint(&mut out, self.counters.len() as u64);
        let mut prev = "";
        for (name, v) in &self.counters {
            put_front_coded(&mut out, prev, name);
            put_varint(&mut out, *v);
            prev = name;
        }
        put_varint(&mut out, self.gauges.len() as u64);
        let mut prev = "";
        for (name, v) in &self.gauges {
            put_front_coded(&mut out, prev, name);
            put_varint(&mut out, *v);
            prev = name;
        }
        put_varint(&mut out, self.histograms.len() as u64);
        let mut prev = "";
        for (name, h) in &self.histograms {
            put_front_coded(&mut out, prev, name);
            for v in [h.count, h.sum, h.max, h.p50, h.p90, h.p99] {
                put_varint(&mut out, v);
            }
            prev = name;
        }
        put_varint(&mut out, self.extra.len() as u64);
        out.extend_from_slice(&self.extra);
        out
    }

    /// Decodes a payload produced by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// [`LedgerError::BadVersion`] for a newer schema,
    /// [`LedgerError::Corrupt`] for any structural violation (truncated
    /// varint, invalid UTF-8, lengths exceeding the payload).
    pub fn decode(bytes: &[u8]) -> Result<Self, LedgerError> {
        let mut cur = Cursor { bytes, pos: 0 };
        let version = cur.varint()?;
        if version > RECORD_SCHEMA_VERSION {
            return Err(LedgerError::BadVersion(version));
        }
        let timestamp_unix_secs = cur.varint()?;
        let elapsed_micros = cur.varint()?;
        let command = cur.string()?;
        let scale = cur.string()?;
        let git_revision = cur.string()?;
        let mut counters = BTreeMap::new();
        let n = cur.varint()?;
        let mut prev = String::new();
        for _ in 0..n {
            let name = cur.front_coded(&prev)?;
            let v = cur.varint()?;
            counters.insert(name.clone(), v);
            prev = name;
        }
        let mut gauges = BTreeMap::new();
        let n = cur.varint()?;
        let mut prev = String::new();
        for _ in 0..n {
            let name = cur.front_coded(&prev)?;
            let v = cur.varint()?;
            gauges.insert(name.clone(), v);
            prev = name;
        }
        let mut histograms = BTreeMap::new();
        let n = cur.varint()?;
        let mut prev = String::new();
        for _ in 0..n {
            let name = cur.front_coded(&prev)?;
            let h = HistStat {
                count: cur.varint()?,
                sum: cur.varint()?,
                max: cur.varint()?,
                p50: cur.varint()?,
                p90: cur.varint()?,
                p99: cur.varint()?,
            };
            histograms.insert(name.clone(), h);
            prev = name;
        }
        let extra_len = cur.varint()? as usize;
        let extra = cur.take(extra_len)?.to_vec();
        if cur.pos != bytes.len() {
            return Err(LedgerError::Corrupt("trailing bytes after payload"));
        }
        Ok(RecordData {
            timestamp_unix_secs,
            elapsed_micros,
            command,
            scale,
            git_revision,
            counters,
            gauges,
            histograms,
            extra,
        })
    }
}

impl LogPayload for RecordData {
    const MAGIC: &'static [u8; 8] = b"POATLGR1";
    const METRIC_RECORDS_APPENDED: &'static str = "ledger.records.appended";
    const METRIC_BYTES_APPENDED: &'static str = "ledger.bytes.appended";
    const METRIC_RECORDS_RECOVERED: &'static str = "ledger.records.recovered";
    const METRIC_TORN_TAILS: &'static str = "ledger.torn.tails";

    fn encode(&self) -> Vec<u8> {
        RecordData::encode(self)
    }

    fn decode(bytes: &[u8]) -> Result<Self, LedgerError> {
        RecordData::decode(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_extremes() {
        for v in [0u64, 1, 127, 128, 300, u64::MAX / 2, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut cur = Cursor {
                bytes: &buf,
                pos: 0,
            };
            assert_eq!(cur.varint().unwrap(), v, "value {v}");
            assert_eq!(cur.pos, buf.len());
        }
    }

    #[test]
    fn front_coding_compresses_the_namespace() {
        let mut rec = RecordData::default();
        for name in [
            "core.polb.hits",
            "core.polb.misses",
            "core.pot.walks",
            "core.pot.walk_probes",
        ] {
            rec.counters.insert(name.to_string(), 7);
        }
        let encoded = rec.encode();
        let plain_len: usize = rec.counters.keys().map(|k| k.len()).sum();
        let decoded = RecordData::decode(&encoded).unwrap();
        assert_eq!(decoded, rec);
        // The whole payload must be smaller than the raw names alone
        // would be — the prefixes are genuinely elided.
        assert!(
            encoded.len() < plain_len + 40,
            "front-coding saved nothing: {} vs {} raw name bytes",
            encoded.len(),
            plain_len
        );
    }

    #[test]
    fn decode_rejects_truncation_everywhere() {
        let mut rec = RecordData {
            command: "all".into(),
            scale: "full".into(),
            git_revision: "abc123".into(),
            ..RecordData::default()
        };
        rec.counters.insert("a.b.c".into(), u64::MAX);
        rec.histograms.insert("a.b.lat".into(), HistStat::default());
        rec.extra = b"opaque".to_vec();
        let encoded = rec.encode();
        assert_eq!(RecordData::decode(&encoded).unwrap(), rec);
        for cut in 0..encoded.len() {
            assert!(
                RecordData::decode(&encoded[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn base_name_rolls_up_labelled_series() {
        let mut rec = RecordData::default();
        rec.counters
            .insert("sim.result.polb_misses{bench=LL}".into(), 30);
        rec.counters
            .insert("sim.result.polb_misses{bench=BST}".into(), 12);
        rec.counters
            .insert("sim.result.polb_misses_other{bench=LL}".into(), 999);
        assert_eq!(rec.metric("sim.result.polb_misses"), Some(42));
        assert_eq!(rec.metric("sim.result.polb_misses{bench=LL}"), Some(30));
        assert_eq!(rec.metric("sim.result.nothing"), None);
    }

    #[test]
    fn newer_schema_is_rejected() {
        let mut buf = Vec::new();
        put_varint(&mut buf, RECORD_SCHEMA_VERSION + 1);
        match RecordData::decode(&buf) {
            Err(LedgerError::BadVersion(v)) => assert_eq!(v, RECORD_SCHEMA_VERSION + 1),
            other => panic!("expected BadVersion, got {:?}", other.map(|_| ())),
        }
    }
}

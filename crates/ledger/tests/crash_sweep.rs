// SPDX-License-Identifier: MIT OR Apache-2.0
//! Crash-point sweep over the ledger's own append path: the ledger is
//! stored through `poat-pmem` write/persist primitives precisely so the
//! fault-injection engine can crash it at every `clwb`/`fence` of an
//! append (ISSUE: observability tentpole, satellite d).
//!
//! Contract being swept (clean and torn injection, multiple seeds):
//!
//! * every record whose `append` returned before the crash is recovered
//!   (a fully-persisted record is never lost);
//! * at most the one in-flight record beyond that may surface (its tail
//!   word can persist on the final boundary of the append);
//! * the scan never serves a torn tail — recovered records decode to
//!   exactly the payloads that were appended, in order;
//! * dropped write-backs (the negative control, which *violates* the
//!   persistence contract) are detectable as lost/short prefixes.

use poat_ledger::{Ledger, LedgerError, PmemMedium, RecordData};
use poat_pmem::faultpoint::enumerate_crash_points;
use poat_pmem::{FaultPlan, PmemError, Runtime, RuntimeConfig};

const CAP: u64 = 1 << 16;
const APPENDS: u64 = 3;

fn build() -> Runtime {
    Runtime::new(RuntimeConfig {
        aslr_seed: 7,
        ..RuntimeConfig::default()
    })
}

fn record(n: u64) -> RecordData {
    let mut rec = RecordData {
        timestamp_unix_secs: 1_700_000_000 + n,
        elapsed_micros: 1000 + n,
        command: format!("sweep-{n}"),
        scale: "quick".into(),
        git_revision: "cafebabe".into(),
        ..RecordData::default()
    };
    rec.counters.insert("t.sweep.seq".into(), n);
    rec.counters.insert("t.sweep.value".into(), n * 17 + 3);
    rec
}

fn to_pmem(e: LedgerError) -> PmemError {
    match e {
        LedgerError::Pmem(p) => p,
        other => panic!("non-pmem ledger error during sweep: {other}"),
    }
}

fn setup(rt: &mut Runtime) -> Result<poat_core::ObjectId, PmemError> {
    let pool = rt.pool_create("lgr", 1 << 20)?;
    rt.pmalloc(pool, CAP)
}

/// Runs setup + `APPENDS` ledger appends, reporting how many appends
/// fully returned before a crash (if any) and the object id once known.
fn run_workload(rt: &mut Runtime) -> (Option<poat_core::ObjectId>, u64, Result<(), PmemError>) {
    let oid = match setup(rt) {
        Ok(oid) => oid,
        Err(e) => return (None, 0, Err(e)),
    };
    let mut completed = 0;
    let result = (|| {
        let medium = PmemMedium::attach(rt, oid, CAP);
        let mut ledger = Ledger::open(medium).map_err(to_pmem)?;
        for n in 0..APPENDS {
            ledger.append(record(n)).map_err(to_pmem)?;
            completed += 1;
        }
        Ok(())
    })();
    (Some(oid), completed, result)
}

/// Reopens the ledger region on a recovered runtime and checks the
/// recovery contract against the number of appends known complete.
fn check_recovered(rt: &mut Runtime, oid: poat_core::ObjectId, completed: u64, ctx: &str) {
    let medium = PmemMedium::attach(rt, oid, CAP);
    let ledger = Ledger::open(medium).unwrap_or_else(|e| panic!("{ctx}: reopen failed: {e}"));
    let scan = ledger.scan_report();
    let recovered = scan.recovered as u64;
    assert!(
        recovered >= completed,
        "{ctx}: lost a fully-persisted record ({recovered} < {completed})"
    );
    assert!(
        recovered <= completed + 1,
        "{ctx}: recovered {recovered} records but only {completed} appends \
         completed (+1 in-flight max)"
    );
    assert_eq!(
        scan.torn_tail_bytes, 0,
        "{ctx}: the tail word committed bytes that do not scan ({:?})",
        scan.torn_reason
    );
    for (i, r) in ledger.records().iter().enumerate() {
        assert_eq!(r.seq, i as u64 + 1, "{ctx}: sequence gap");
        assert_eq!(
            r.data,
            record(i as u64),
            "{ctx}: record {i} content diverged after recovery"
        );
    }
}

#[test]
fn clean_and_torn_crashes_at_every_append_boundary_lose_nothing() {
    // Boundaries crossed by setup alone vs the full workload: the delta
    // is the magic + three append protocol — the range we sweep.
    let n_setup = enumerate_crash_points(build, |rt| setup(rt).map(|_| ()))
        .unwrap()
        .len() as u64;
    let n_total = enumerate_crash_points(build, |rt| run_workload(rt).2)
        .unwrap()
        .len() as u64;
    assert!(
        n_total > n_setup + 8,
        "append path crosses too few persist boundaries \
         ({n_total} total vs {n_setup} setup)"
    );

    for torn in [false, true] {
        for point in n_setup + 1..=n_total {
            for seed in [1u64, 7] {
                let ctx = format!(
                    "point {point} ({}) seed {seed}",
                    if torn { "torn" } else { "clean" }
                );
                let mut rt = build();
                rt.arm_fault_plan(FaultPlan {
                    crash_after: Some(point),
                    torn_lines: torn,
                    ..FaultPlan::default()
                });
                let (oid, completed, result) = run_workload(&mut rt);
                assert!(
                    matches!(result, Err(PmemError::InjectedCrash)),
                    "{ctx}: expected an injected crash, got {result:?}"
                );
                let oid = oid.unwrap_or_else(|| panic!("{ctx}: crash before the object existed"));
                let mut rt = rt.crash_and_recover(seed).unwrap();
                assert!(
                    poat_pmem::faultpoint::verify_recovery(&mut rt)
                        .unwrap()
                        .is_empty(),
                    "{ctx}: pool invariants violated"
                );
                check_recovered(&mut rt, oid, completed, &ctx);
            }
        }
    }
}

#[test]
fn dropped_writebacks_in_the_append_path_are_detectable() {
    // The negative control: silently dropping one clwb inside the append
    // protocol, letting the workload fence over it and finish, must be
    // *visible* somewhere in the stream — as a short prefix (a record the
    // program believed durable is gone) or a truncated torn tail. If the
    // whole sweep detects nothing, the checksummed-frame scan is vacuous.
    let points = enumerate_crash_points(build, |rt| run_workload(rt).2).unwrap();
    let clwbs = points
        .iter()
        .filter(|p| p.kind == poat_pmem::BoundaryKind::Clwb)
        .count() as u64;
    assert!(clwbs > 4, "expected several clwbs in the append path");

    // At crash time each still-dirty line *may* have been evicted (and so
    // persisted anyway) per a seeded RNG, so a single recovery seed can
    // mask the loss; sweep several seeds and count a detection when any
    // of them surfaces the damage.
    let mut detections = 0u64;
    for n in 1..=clwbs {
        'seeds: for seed in [1u64, 2, 3, 5, 8, 13, 21, 34] {
            let mut rt = build();
            rt.arm_fault_plan(FaultPlan {
                drop_clwb: Some(n),
                ..FaultPlan::default()
            });
            let (oid, completed, result) = run_workload(&mut rt);
            assert!(result.is_ok(), "the control runs to completion");
            assert_eq!(completed, APPENDS);
            let Some(oid) = oid else { continue };
            let mut rt = rt.crash_and_recover(seed).unwrap();
            let medium = PmemMedium::attach(&mut rt, oid, CAP);
            // A dropped write-back may corrupt the stream arbitrarily; any
            // deviation from the full clean prefix counts as detected.
            let detected = match Ledger::open(medium) {
                Ok(ledger) => {
                    let scan = ledger.scan_report();
                    (scan.recovered as u64) < APPENDS || scan.torn_tail_bytes > 0
                }
                Err(_) => true,
            };
            if detected {
                detections += 1;
                break 'seeds;
            }
        }
    }
    assert!(
        detections > 0,
        "no dropped clwb was ever detected by the ledger scan"
    );
}

//! Shape checks against the paper's headline claims, at smoke scale.
//! Absolute numbers differ from the paper (our substrate is a simulator,
//! not their testbed); these tests pin down the *qualitative* results the
//! reproduction must preserve. EXPERIMENTS.md records the full-scale
//! paper-vs-measured comparison.

use poat::harness::experiments::{self, POLB_SIZES, POT_LATENCIES};
use poat::harness::Scale;

#[test]
fn table2_software_translation_costs() {
    let rows = experiments::table2(Scale::Quick);
    let by = |b: &str| rows.iter().find(|r| r.bench == b).unwrap();
    for r in &rows {
        // ALL: the predictor nearly always hits → ~17 instructions.
        assert!(
            (16.0..19.0).contains(&r.insns_all),
            "{}: ALL should cost ~17, got {:.1}",
            r.bench,
            r.insns_all
        );
        // EACH: the full look-up dominates.
        assert!(
            r.insns_each > 45.0,
            "{}: EACH should be far above the hit cost, got {:.1}",
            r.bench,
            r.insns_each
        );
    }
    // LL's pool-per-node traversal defeats the predictor hardest.
    let ll = by("LL");
    for r in &rows {
        if r.bench != "LL" && r.bench != "GeoMean" {
            assert!(ll.miss_each >= r.miss_each - 0.02, "{}", r.bench);
        }
    }
}

#[test]
fn fig9_speedup_shapes() {
    let main = experiments::main_matrix(Scale::Quick);
    let get = |rows: &[experiments::SpeedupRow], b: &str, p: &str| {
        rows.iter()
            .find(|r| r.bench == b && r.pattern == p)
            .unwrap_or_else(|| panic!("{b}/{p}"))
            .clone()
    };

    for bench in ["LL", "BST", "RBT", "BT", "B+T", "SPS"] {
        let all = get(&main.fig9a, bench, "ALL");
        let random = get(&main.fig9a, bench, "RANDOM");
        // RANDOM defeats the software predictor → larger hardware win.
        assert!(random.pipelined > all.pipelined, "{bench}");
        // Speedups exist everywhere and the ideal dot bounds the bars.
        assert!(random.pipelined > 1.2, "{bench}: {:.2}", random.pipelined);
        assert!(all.ideal >= all.pipelined - 0.02, "{bench}");
        assert!(random.ideal >= random.pipelined - 0.02, "{bench}");

        // Out-of-order hides latency: smaller speedup than in-order.
        let ooo = get(&main.fig9b, bench, "RANDOM");
        assert!(
            ooo.pipelined < random.pipelined,
            "{bench}: ooo {:.2} !< ino {:.2}",
            ooo.pipelined,
            random.pipelined
        );
        assert!(ooo.pipelined > 1.0, "{bench}: hardware still wins on OoO");
    }

    // TPCC: modest but real speedups; EACH > ALL.
    let tp_all = get(&main.fig9a, "TPCC", "TPCC_ALL");
    let tp_each = get(&main.fig9a, "TPCC", "TPCC_EACH");
    assert!(tp_each.pipelined > tp_all.pipelined);
    assert!(tp_all.pipelined > 0.95);

    // The paper's §1 headline: large dynamic-instruction reduction.
    let micro_random: Vec<f64> = main
        .instrs
        .iter()
        .filter(|r| r.pattern == "RANDOM")
        .map(|r| r.reduction)
        .collect();
    let mean = micro_random.iter().sum::<f64>() / micro_random.len() as f64;
    assert!(
        mean > 0.30,
        "mean RANDOM instruction reduction {mean:.2} (paper: 0.439)"
    );
}

#[test]
fn table8_miss_rate_shapes() {
    let main = experiments::main_matrix(Scale::Quick);
    for r in &main.table8 {
        if r.bench == "TPCC" {
            continue;
        }
        // Per-page Parallel entries miss at least as much as per-pool
        // Pipelined entries under EACH.
        assert!(
            r.par_each >= r.pipe_each - 0.02,
            "{}: par {:.3} vs pipe {:.3}",
            r.bench,
            r.par_each,
            r.pipe_each
        );
        // EACH (a pool per node) pressures the POLB more than ALL.
        assert!(r.par_each >= r.par_all, "{}", r.bench);
    }
    let ll = main.table8.iter().find(|r| r.bench == "LL").unwrap();
    for r in &main.table8 {
        if r.bench != "LL" && r.bench != "TPCC" {
            assert!(
                ll.pipe_each >= r.pipe_each,
                "LL has the worst EACH locality"
            );
        }
    }
}

#[test]
fn fig10_removing_durability_raises_speedups() {
    let ntx = experiments::fig10(Scale::Quick);
    let tx = experiments::main_matrix(Scale::Quick);
    let mut higher = 0;
    let mut total = 0;
    for r in &ntx {
        let with_tx = tx
            .fig9a
            .iter()
            .find(|t| t.bench == r.bench && t.pattern == r.pattern)
            .unwrap();
        total += 1;
        if r.pipelined > with_tx.pipelined {
            higher += 1;
        }
    }
    // Paper §6.2: "The speedup on both designs are higher than the prior
    // case with persistence and atomicity support."
    assert!(
        higher * 3 >= total * 2,
        "NTX should raise most speedups: {higher}/{total}"
    );
}

#[test]
fn fig11_polb_size_saturates() {
    let rows = experiments::fig11(Scale::Quick);
    assert_eq!(POLB_SIZES, [0, 1, 4, 32, 128]);
    for r in &rows {
        let n = r.pipelined.len();
        // No POLB is the worst configuration.
        assert!(
            r.pipelined[0] <= r.pipelined[n - 1] + 0.02,
            "{}: {:?}",
            r.bench,
            r.pipelined
        );
        // 32 entries suffice for 32 pools: within 2% of 128 entries.
        let at32 = r.pipelined[3];
        let at128 = r.pipelined[4];
        assert!(
            (at128 - at32).abs() / at128 < 0.02,
            "{}: 32-entry POLB should saturate (32 pools): {at32:.2} vs {at128:.2}",
            r.bench
        );
        // Miss rates shrink as the POLB grows.
        assert!(r.pipe_miss[1] <= r.pipe_miss[0] + 1e-9, "{}", r.bench);
        assert!(r.pipe_miss[3] <= r.pipe_miss[1], "{}", r.bench);
    }
}

#[test]
fn fig12_pot_walk_latency_hurts_high_miss_workloads_most() {
    let rows = experiments::fig12(Scale::Quick);
    assert_eq!(POT_LATENCIES.len(), 6);
    let drop_of = |b: &str| {
        let r = rows.iter().find(|r| r.bench == b).unwrap();
        // Relative slowdown from ideal to a 500-cycle walk.
        (r.speedups[0] - r.speedups[5]) / r.speedups[0]
    };
    // LL (worst POLB locality under EACH) must be the most sensitive.
    let ll = drop_of("LL");
    for b in ["BT", "B+T", "SPS"] {
        assert!(
            ll >= drop_of(b),
            "LL drop {ll:.3} should exceed {b} drop {:.3}",
            drop_of(b)
        );
    }
}

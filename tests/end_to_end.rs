//! Cross-crate integration: workload → runtime trace → timing models,
//! asserting the causal chain the paper's evaluation rests on.

use poat::harness::{run_micro, simulate, Core, Scale};
use poat::sim::SimConfig;
use poat::workloads::{ExpConfig, Micro, Pattern};
use poat_core::{PolbDesign, TranslationConfig};
use poat_sim::{simulate_inorder, simulate_ooo};

#[test]
fn opt_is_faster_than_base_on_random_for_every_bench() {
    for bench in Micro::ALL {
        let base = run_micro(bench, Pattern::Random, ExpConfig::Base, Scale::Quick);
        let opt = run_micro(bench, Pattern::Random, ExpConfig::Opt, Scale::Quick);
        let cfg = TranslationConfig::default();
        let b = simulate(&base, Core::InOrder, cfg);
        let o = simulate(&opt, Core::InOrder, cfg);
        assert!(
            o.cycles < b.cycles,
            "{bench}: OPT {} !< BASE {}",
            o.cycles,
            b.cycles
        );
        assert!(
            o.instructions < b.instructions,
            "{bench}: hardware translation must remove instructions"
        );
    }
}

#[test]
fn out_of_order_extracts_more_ilp_than_in_order() {
    for bench in [Micro::Ll, Micro::Bst, Micro::Sps] {
        let base = run_micro(bench, Pattern::Random, ExpConfig::Base, Scale::Quick);
        let cfg = SimConfig::default();
        let ino = simulate_inorder(&base.trace, &base.state, &cfg).unwrap();
        let ooo = simulate_ooo(&base.trace, &base.state, &cfg).unwrap();
        assert!(ooo.cycles < ino.cycles, "{bench}");
        assert_eq!(ooo.instructions, ino.instructions, "{bench}: same program");
    }
}

#[test]
fn ooo_narrows_the_opt_base_gap() {
    // The paper's key out-of-order observation (Fig 9b vs 9a): OoO hides
    // some of the software-translation latency, so OPT helps it less.
    let base = run_micro(Micro::Bst, Pattern::Random, ExpConfig::Base, Scale::Quick);
    let opt = run_micro(Micro::Bst, Pattern::Random, ExpConfig::Opt, Scale::Quick);
    let cfg = TranslationConfig::default();
    let speedup_ino = simulate(&base, Core::InOrder, cfg).cycles as f64
        / simulate(&opt, Core::InOrder, cfg).cycles as f64;
    let speedup_ooo = simulate(&base, Core::OutOfOrder, cfg).cycles as f64
        / simulate(&opt, Core::OutOfOrder, cfg).cycles as f64;
    assert!(
        speedup_ooo < speedup_ino,
        "in-order {speedup_ino:.2}x vs out-of-order {speedup_ooo:.2}x"
    );
    assert!(speedup_ino > 1.2, "in-order speedup should be substantial");
    assert!(speedup_ooo > 1.0, "OPT still wins on out-of-order");
}

#[test]
fn ideal_translation_bounds_both_designs() {
    for pattern in Pattern::ALL {
        let opt = run_micro(Micro::Rbt, pattern, ExpConfig::Opt, Scale::Quick);
        let pipe = simulate(&opt, Core::InOrder, TranslationConfig::default());
        let par = simulate(
            &opt,
            Core::InOrder,
            TranslationConfig::for_design(PolbDesign::Parallel),
        );
        let ideal = simulate(
            &opt,
            Core::InOrder,
            TranslationConfig::default().idealized(),
        );
        assert!(ideal.cycles <= pipe.cycles, "{pattern}");
        assert!(ideal.cycles <= par.cycles, "{pattern}");
    }
}

#[test]
fn each_pattern_stresses_the_polb_most() {
    let mut rates = Vec::new();
    for pattern in Pattern::ALL {
        let opt = run_micro(Micro::Ll, pattern, ExpConfig::Opt, Scale::Quick);
        let r = simulate(&opt, Core::InOrder, TranslationConfig::default());
        rates.push((pattern, r.translation.polb.miss_rate()));
    }
    let get = |p: Pattern| rates.iter().find(|(q, _)| *q == p).unwrap().1;
    assert!(get(Pattern::Each) > get(Pattern::Random), "{rates:?}");
    assert!(get(Pattern::Each) > get(Pattern::All), "{rates:?}");
    assert!(get(Pattern::All) < 0.01, "one pool fits one POLB entry");
}

#[test]
fn base_runs_never_touch_translation_hardware() {
    let base = run_micro(Micro::Bt, Pattern::Each, ExpConfig::Base, Scale::Quick);
    let r = simulate(&base, Core::InOrder, TranslationConfig::default());
    assert_eq!(r.translation.polb.lookups(), 0);
    assert_eq!(r.translation.pot_walks, 0);
    assert_eq!(r.translation.exceptions, 0);
}

#[test]
fn traces_are_deterministic() {
    let a = run_micro(Micro::Bpt, Pattern::Random, ExpConfig::Opt, Scale::Quick);
    let b = run_micro(Micro::Bpt, Pattern::Random, ExpConfig::Opt, Scale::Quick);
    assert_eq!(a.trace.len(), b.trace.len());
    assert_eq!(a.summary, b.summary);
    let cfg = TranslationConfig::default();
    assert_eq!(
        simulate(&a, Core::InOrder, cfg).cycles,
        simulate(&b, Core::InOrder, cfg).cycles
    );
}

//! Guards the committed experiment artifacts: the recorded full-scale
//! results file must stay parseable and structurally complete, so
//! EXPERIMENTS.md's numbers always have a machine-readable counterpart.

use std::path::Path;

#[test]
fn committed_results_json_is_complete() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("results_full.json");
    let data = std::fs::read_to_string(&path).expect("results_full.json present");
    let v: serde_json::Value = serde_json::from_str(&data).expect("valid json");

    for key in ["table2", "main", "fig10", "fig11", "fig12", "ablations"] {
        assert!(v.get(key).is_some(), "missing artifact {key}");
    }
    let main = &v["main"];
    for key in ["fig9a", "fig9b", "table8", "instrs"] {
        assert!(main.get(key).is_some(), "missing main.{key}");
    }
    // 6 micro × 3 patterns + 2 TPCC rows.
    assert_eq!(main["fig9a"].as_array().expect("array").len(), 20);
    assert_eq!(
        v["table2"].as_array().expect("array").len(),
        7,
        "6 benches + geomean"
    );
    assert_eq!(v["fig11"].as_array().expect("array").len(), 6);
    assert_eq!(v["fig12"].as_array().expect("array").len(), 6);

    // Headline shape invariants of the recorded run.
    let random_pipelined: Vec<f64> = main["fig9a"]
        .as_array()
        .expect("array")
        .iter()
        .filter(|r| r["pattern"] == "RANDOM")
        .map(|r| r["pipelined"].as_f64().expect("number"))
        .collect();
    assert_eq!(random_pipelined.len(), 6);
    assert!(
        random_pipelined.iter().all(|&s| s > 1.3),
        "recorded RANDOM speedups degenerate: {random_pipelined:?}"
    );
}

#[test]
fn experiments_doc_mentions_every_artifact() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("EXPERIMENTS.md");
    let doc = std::fs::read_to_string(&path).expect("EXPERIMENTS.md present");
    for artifact in [
        "Table 2",
        "Figure 9(a)",
        "Figure 9(b)",
        "Table 8",
        "Figure 10",
        "Figure 11",
        "Table 9",
        "Figure 12",
        "Ablations",
    ] {
        assert!(doc.contains(artifact), "EXPERIMENTS.md missing {artifact}");
    }
}

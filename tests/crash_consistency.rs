//! Property-based crash-consistency tests: every committed transaction
//! survives any crash; no uncommitted transaction is ever partially
//! visible after recovery. This is the failure-safety contract the
//! paper's runtime (Table 1) must provide regardless of translation mode.

use poat::core::ObjectId;
use poat::pmem::{Runtime, RuntimeConfig, TranslationMode};
use proptest::prelude::*;

/// Applies `n_commits` committed counter increments and one uncommitted
/// increment, then crashes with `crash_seed` and checks the counter.
fn committed_survive_uncommitted_vanish(
    mode: TranslationMode,
    n_commits: u64,
    crash_seed: u64,
    aslr_seed: u64,
) {
    let mut rt = Runtime::new(RuntimeConfig {
        mode,
        aslr_seed,
        ..RuntimeConfig::default()
    });
    let pool = rt.pool_create("ctr", 1 << 16).unwrap();
    let ctr = rt.pmalloc(pool, 8).unwrap();
    rt.write_u64(ctr, 0).unwrap();
    rt.persist(ctr, 8).unwrap();

    for _ in 0..n_commits {
        rt.tx_begin(pool).unwrap();
        rt.tx_add_range(ctr, 8).unwrap();
        let v = rt.read_u64(ctr).unwrap();
        rt.write_u64(ctr, v + 1).unwrap();
        rt.tx_end().unwrap();
    }
    // Uncommitted increment.
    rt.tx_begin(pool).unwrap();
    rt.tx_add_range(ctr, 8).unwrap();
    let v = rt.read_u64(ctr).unwrap();
    rt.write_u64(ctr, v + 1).unwrap();

    let mut rt = rt.crash_and_recover(crash_seed).unwrap();
    let after = rt.read_u64(ctr).unwrap();
    assert_eq!(after, n_commits, "seed {crash_seed}: atomicity violated");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn counter_atomicity_software(
        n in 0u64..8, crash in any::<u64>(), aslr in any::<u64>()
    ) {
        committed_survive_uncommitted_vanish(TranslationMode::Software, n, crash, aslr);
    }

    #[test]
    fn counter_atomicity_hardware(
        n in 0u64..8, crash in any::<u64>(), aslr in any::<u64>()
    ) {
        committed_survive_uncommitted_vanish(TranslationMode::Hardware, n, crash, aslr);
    }

    #[test]
    fn multi_object_transactions_are_all_or_nothing(
        writes in prop::collection::vec((0usize..8, any::<u64>()), 1..12),
        crash in any::<u64>(),
        commit in any::<bool>(),
    ) {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let pool = rt.pool_create("m", 1 << 16).unwrap();
        let objs: Vec<ObjectId> = (0..8).map(|_| rt.pmalloc(pool, 8).unwrap()).collect();
        for &o in &objs {
            rt.write_u64(o, 1000).unwrap();
            rt.persist(o, 8).unwrap();
        }
        rt.tx_begin(pool).unwrap();
        for &(i, v) in &writes {
            rt.tx_add_range(objs[i], 8).unwrap();
            rt.write_u64(objs[i], v).unwrap();
        }
        if commit {
            rt.tx_end().unwrap();
        }
        let mut rt = rt.crash_and_recover(crash).unwrap();
        if commit {
            // Final value per object = last write to it (or initial 1000).
            for (i, &o) in objs.iter().enumerate() {
                let want = writes.iter().rev().find(|(j, _)| *j == i).map(|&(_, v)| v)
                    .unwrap_or(1000);
                prop_assert_eq!(rt.read_u64(o).unwrap(), want);
            }
        } else {
            for &o in &objs {
                prop_assert_eq!(rt.read_u64(o).unwrap(), 1000, "rollback restores pre-state");
            }
        }
    }

    #[test]
    fn tx_allocations_never_leak_after_crash(
        sizes in prop::collection::vec(8u64..128, 1..6),
        crash in any::<u64>(),
    ) {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let pool = rt.pool_create("alloc", 1 << 18).unwrap();
        // Uncommitted transactional allocations...
        rt.tx_begin(pool).unwrap();
        let mut allocated = Vec::new();
        for &s in &sizes {
            allocated.push(rt.tx_pmalloc(s).unwrap());
        }
        let mut rt = rt.crash_and_recover(crash).unwrap();
        // ...are rolled back: recovery frees them in reverse record order,
        // so the LIFO free list hands them back in allocation order.
        for oid in &allocated {
            let again = rt.pmalloc(pool, 8).unwrap();
            prop_assert_eq!(again, *oid);
        }
    }
}

#[test]
fn repeated_crashes_between_transactions() {
    let mut rt = Runtime::new(RuntimeConfig::default());
    let pool = rt.pool_create("chain", 1 << 16).unwrap();
    let cell = rt.pmalloc(pool, 8).unwrap();
    rt.write_u64(cell, 0).unwrap();
    rt.persist(cell, 8).unwrap();
    for round in 1..=10u64 {
        rt.tx_begin(pool).unwrap();
        rt.tx_add_range(cell, 8).unwrap();
        rt.write_u64(cell, round).unwrap();
        rt.tx_end().unwrap();
        rt = rt.crash_and_recover(round * 31).unwrap();
        assert_eq!(rt.read_u64(cell).unwrap(), round, "round {round}");
    }
    assert_eq!(rt.stats().recoveries, 10);
}

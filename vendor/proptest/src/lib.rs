//! # proptest (offline stand-in)
//!
//! A deterministic randomized-property-testing harness that is
//! source-compatible with the slice of `proptest` this workspace uses:
//! the [`proptest!`] macro, range / tuple / [`strategy::Just`] / [`prop_oneof!`] /
//! `prop::collection::vec` / `any::<T>()` strategies, `prop_map`, and the
//! `prop_assert*` macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its case number and the
//!   sampled inputs are reproducible (the RNG is seeded from the test
//!   name), but inputs are not minimized.
//! * **No persistence.** `*.proptest-regressions` files are ignored.
//! * `prop_assert*` panics (like `assert*`) instead of returning `Err`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Run-time configuration for a [`proptest!`] block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; this stand-in keeps it.
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic RNG driving all sampling.
pub mod test_runner {
    pub use rand::rngs::StdRng as TestRng;
    use rand::SeedableRng;

    /// Builds the RNG for a named test: the seed is a stable hash of the
    /// test name, so failures reproduce across runs and machines.
    pub fn rng_for(test_name: &str) -> TestRng {
        let seed = test_name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
        });
        TestRng::seed_from_u64(seed)
    }

    /// Prints the failing case number if the test body panics, giving the
    /// stand-in's no-shrinking failures a reproducible handle.
    pub struct CaseReporter {
        /// Test name (for the failure message).
        pub test: &'static str,
        /// Zero-based case index.
        pub case: u32,
    }

    impl Drop for CaseReporter {
        fn drop(&mut self) {
            if std::thread::panicking() {
                eprintln!(
                    "proptest stand-in: `{}` failed at case {} (deterministic; re-run reproduces it)",
                    self.test, self.case
                );
            }
        }
    }
}

/// Strategy combinators and primitive strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn ErasedStrategy<T>>);

    trait ErasedStrategy<T> {
        fn sample_erased(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> ErasedStrategy<S::Value> for S {
        fn sample_erased(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample_erased(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between boxed strategies (built by `prop_oneof!`).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// A union over the given (non-empty) alternatives.
        ///
        /// # Panics
        ///
        /// Panics if `alts` is empty.
        pub fn new(alts: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !alts.is_empty(),
                "prop_oneof! needs at least one alternative"
            );
            Union(alts)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.0.len());
            self.0[idx].sample(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Samples an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.gen()
        }
    }

    impl Arbitrary for super::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            super::sample::Index(rng.gen())
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Auxiliary sampled types.
pub mod sample {
    /// An index into a collection whose length is only known at use time
    /// (`any::<Index>()` then `idx.index(len)`).
    #[derive(Clone, Copy, Debug)]
    pub struct Index(pub(crate) u64);

    impl Index {
        /// Projects onto `0..len`.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

/// Everything a property test needs, glob-importable.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` module namespace (`prop::collection::vec`,
    /// `prop::sample::Index`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running `body` over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    (@with ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::rng_for(stringify!($name));
            for __case in 0..__config.cases {
                let __reporter = $crate::test_runner::CaseReporter {
                    test: stringify!($name),
                    case: __case,
                };
                let ($($pat,)+) = (
                    $($crate::strategy::Strategy::sample(&{ $strat }, &mut __rng),)+
                );
                { $body }
                drop(__reporter);
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Boolean property assertion (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_rng_per_name() {
        use crate::strategy::Strategy;
        let s = 0u64..100;
        let mut a = crate::test_runner::rng_for("x");
        let mut b = crate::test_runner::rng_for("x");
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(
            x in 1u32..10,
            v in prop::collection::vec((0u8..4, any::<u64>()), 1..8),
            choice in prop_oneof![Just(1u8), Just(2u8)],
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&(a, _)| a < 4));
            prop_assert!(choice == 1 || choice == 2);
            prop_assert!(idx.index(v.len()) < v.len());
        }

        #[test]
        fn mapped_strategies(p in (1u32..50).prop_map(|n| n * 2)) {
            prop_assert_eq!(p % 2, 0);
            prop_assert_ne!(p, 0);
        }
    }
}

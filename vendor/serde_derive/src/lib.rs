//! # serde_derive (offline stand-in)
//!
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored `serde` stand-in. Instead of `syn`/`quote` (unavailable in
//! this hermetic build), the derive input is parsed directly from the
//! `proc_macro::TokenStream` and the generated impl is rendered as a
//! source string.
//!
//! Supported shapes — exactly what this workspace derives on:
//!
//! * structs with named fields (serialized as a map in field order),
//! * newtype structs (serialized as the inner value),
//! * tuple structs with ≥ 2 fields (serialized as a sequence),
//! * enums whose variants all carry no data (serialized as the variant
//!   name, matching serde's externally-tagged unit-variant form).
//!
//! Generic types and `#[serde(...)]` attributes are rejected loudly
//! rather than miscompiled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the derive input declared.
enum Shape {
    /// `struct S { a: A, b: B }` — field names in declaration order.
    Named(Vec<String>),
    /// `struct S(A, …)` — number of unnamed fields.
    Tuple(usize),
    /// `enum E { V1, V2 }` — variant names.
    UnitEnum(Vec<String>),
}

struct Input {
    name: String,
    shape: Shape,
}

/// Skips one attribute (`#` `[…]` or `#` `!` `[…]`) if present.
fn skip_attr(tokens: &[TokenTree], i: &mut usize) -> bool {
    if let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() == '#' {
            let mut j = *i + 1;
            if let Some(TokenTree::Punct(b)) = tokens.get(j) {
                if b.as_char() == '!' {
                    j += 1;
                }
            }
            if matches!(tokens.get(j), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
            {
                *i = j + 1;
                return true;
            }
        }
    }
    false
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, …) if present.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn parse_named_fields(body: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        while skip_attr(body, &mut i) {}
        if i >= body.len() {
            break;
        }
        skip_vis(body, &mut i);
        let TokenTree::Ident(name) = &body[i] else {
            panic!(
                "serde stand-in derive: expected field name, got {:?}",
                body[i]
            );
        };
        fields.push(name.to_string());
        i += 1;
        assert!(
            matches!(&body[i], TokenTree::Punct(p) if p.as_char() == ':'),
            "serde stand-in derive: expected `:` after field `{}`",
            fields.last().unwrap()
        );
        i += 1;
        // Consume the type: skip to the next comma that is not inside
        // angle brackets (`<…>` are punctuation, not token groups).
        let mut angle_depth = 0i32;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn parse_unit_variants(body: &[TokenTree]) -> Vec<String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        while skip_attr(body, &mut i) {}
        if i >= body.len() {
            break;
        }
        let TokenTree::Ident(name) = &body[i] else {
            panic!(
                "serde stand-in derive: expected variant name, got {:?}",
                body[i]
            );
        };
        variants.push(name.to_string());
        i += 1;
        match body.get(i) {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => panic!(
                "serde stand-in derive: enum variant `{}` carries data; only unit variants are supported",
                variants.last().unwrap()
            ),
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Discriminant: `Variant = 3` — skip to the next comma.
                while i < body.len()
                    && !matches!(&body[i], TokenTree::Punct(q) if q.as_char() == ',')
                {
                    i += 1;
                }
                if i < body.len() {
                    i += 1;
                }
            }
            Some(other) => panic!("serde stand-in derive: unexpected token {other:?} in enum body"),
        }
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    while skip_attr(&tokens, &mut i) {}
    skip_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => {
            id.to_string()
        }
        other => panic!("serde stand-in derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let TokenTree::Ident(name) = &tokens[i] else {
        panic!("serde stand-in derive: expected type name");
    };
    let name = name.to_string();
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive: generic type `{name}` is not supported");
    }
    let Some(TokenTree::Group(body)) = tokens.get(i) else {
        panic!("serde stand-in derive: `{name}` has no body (unit structs are unsupported)");
    };
    let body_tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    let shape = match (kind.as_str(), body.delimiter()) {
        ("struct", Delimiter::Brace) => Shape::Named(parse_named_fields(&body_tokens)),
        ("struct", Delimiter::Parenthesis) => {
            // Count unnamed fields: commas at angle depth 0, plus one.
            let mut angle_depth = 0i32;
            let mut fields = 1;
            let mut saw_any = false;
            for t in &body_tokens {
                saw_any = true;
                match t {
                    TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                    TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => fields += 1,
                    _ => {}
                }
            }
            assert!(
                saw_any,
                "serde stand-in derive: empty tuple struct `{name}`"
            );
            Shape::Tuple(fields)
        }
        ("enum", Delimiter::Brace) => Shape::UnitEnum(parse_unit_variants(&body_tokens)),
        _ => panic!("serde stand-in derive: unsupported shape for `{name}`"),
    };
    Input { name, shape }
}

/// Derives `serde::Serialize` (stand-in data-model form).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let Input { name, shape } = parse_input(input);
    let body = match &shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("(\"{f}\".to_string(), ::serde::Serialize::to_content(&self.{f}))")
                })
                .collect();
            format!("::serde::Content::Map(vec![{}])", entries.join(", "))
        }
        Shape::Tuple(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(vec![{}])", items.join(", "))
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Content::Str(\"{v}\".to_string())"))
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (stand-in data-model form).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let Input { name, shape } = parse_input(input);
    let body = match &shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_content(::serde::field(content, \"{f}\")?)?")
                })
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_content(content)?))"),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_content(\
                             seq.get({i}).ok_or_else(|| \"sequence too short\".to_string())?\
                         )?"
                    )
                })
                .collect();
            format!(
                "let seq = content.as_array().ok_or_else(|| \"expected sequence\".to_string())?;\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v})"))
                .collect();
            format!(
                "match content.as_str() {{\n\
                     Some(s) => match s {{ {}, other => Err(format!(\"unknown {name} variant {{other}}\")) }},\n\
                     None => Err(\"expected string for enum\".to_string()),\n\
                 }}",
                arms.join(", ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_content(content: &::serde::Content) -> Result<Self, String> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

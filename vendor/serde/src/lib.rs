//! # serde (offline stand-in)
//!
//! This workspace builds in a hermetic environment with no access to
//! crates.io, so the real `serde` cannot be downloaded. This crate is a
//! minimal, API-compatible stand-in covering exactly what the POAT
//! workspace uses:
//!
//! * `#[derive(Serialize, Deserialize)]` on plain structs (named fields,
//!   newtype/tuple) and field-less enums, via the sibling `serde_derive`
//!   stand-in;
//! * serialization into a self-describing tree ([`Content`]), which
//!   `serde_json` (also vendored) renders as JSON and parses back.
//!
//! The real serde's visitor architecture is intentionally not reproduced:
//! every type serializes by building a [`Content`] tree. That is slower
//! and less general, but sufficient for experiment-result emission, and
//! keeps the whole dependency closure auditable and offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value — the stand-in's data model.
///
/// `serde_json` re-exports this as its `Value` type, so the two layers
/// share one representation (the real crates do the same in spirit:
/// `serde_json::Value` is serde's self-describing form).
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// JSON `null` (also `Option::None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered map with string keys (struct fields keep declaration
    /// order; `BTreeMap`s are sorted by key).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Content>> {
        match self {
            Content::Seq(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an `f64` (any numeric variant converts).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Content::U64(n) => Some(*n as f64),
            Content::I64(n) => Some(*n as f64),
            Content::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an unsigned integer (or a
    /// non-negative signed one).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Content::U64(n) => Some(*n),
            Content::I64(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// True if the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Content::Null)
    }
}

static NULL: Content = Content::Null;

impl std::ops::Index<&str> for Content {
    type Output = Content;
    fn index(&self, key: &str) -> &Content {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Content {
    type Output = Content;
    fn index(&self, idx: usize) -> &Content {
        match self {
            Content::Seq(v) => v.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Content {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Content::Str(s) if s == other)
    }
}

impl PartialEq<str> for Content {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Content::Str(s) if s == other)
    }
}

/// Types that can serialize themselves into a [`Content`] tree.
pub trait Serialize {
    /// Builds the serialized form of `self`.
    fn to_content(&self) -> Content;
}

/// Types that can reconstruct themselves from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Parses `self` out of a serialized tree.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first mismatch encountered.
    fn from_content(content: &Content) -> Result<Self, String>;
}

// --- Serialize impls for primitives and std containers -----------------

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, String> {
                c.as_u64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| format!("expected {}, got {c:?}", stringify!($t)))
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, String> {
                match c {
                    Content::I64(n) => <$t>::try_from(*n).ok(),
                    Content::U64(n) => <$t>::try_from(*n).ok(),
                    _ => None,
                }
                .ok_or_else(|| format!("expected {}, got {c:?}", stringify!($t)))
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, String> {
        c.as_f64().ok_or_else(|| format!("expected f64, got {c:?}"))
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Bool(b) => Ok(*b),
            _ => Err(format!("expected bool, got {c:?}")),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, String> {
        c.as_str()
            .map(str::to_owned)
            .ok_or_else(|| format!("expected string, got {c:?}"))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, String> {
        c.as_array()
            .ok_or_else(|| format!("expected array, got {c:?}"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for BTreeMap<&str, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| ((*k).to_owned(), v.to_content()))
                .collect(),
        )
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, String> {
        Ok(c.clone())
    }
}

/// Helper used by derived `Deserialize` impls: fetches a struct field,
/// treating a missing key as `null` (so `Option` fields tolerate absence).
///
/// # Errors
///
/// Errs when `content` is not a map.
pub fn field<'c>(content: &'c Content, name: &str) -> Result<&'c Content, String> {
    match content {
        Content::Map(_) => Ok(content.get(name).unwrap_or(&NULL)),
        other => Err(format!("expected map with field `{name}`, got {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(7u64.to_content(), Content::U64(7));
        assert_eq!(u64::from_content(&Content::U64(7)), Ok(7));
        assert_eq!((-3i64).to_content(), Content::I64(-3));
        assert_eq!(true.to_content(), Content::Bool(true));
        assert_eq!("x".to_owned().to_content(), Content::Str("x".into()));
        assert_eq!(Option::<u64>::None.to_content(), Content::Null);
    }

    #[test]
    fn content_accessors() {
        let v = Content::Map(vec![
            ("a".into(), Content::Seq(vec![Content::F64(1.5)])),
            ("b".into(), Content::Str("RANDOM".into())),
        ]);
        assert_eq!(v["a"][0].as_f64(), Some(1.5));
        assert!(v["b"] == "RANDOM");
        assert!(v.get("c").is_none());
        assert!(v["missing"].is_null());
    }
}

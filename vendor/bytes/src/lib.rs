//! # bytes (offline stand-in)
//!
//! A Vec-backed replacement for the `bytes` crate covering the cursor
//! and little-endian accessor surface the POAT trace serializer uses.
//! No shared-ownership optimization is attempted: [`Bytes`] owns its
//! buffer and advances a read cursor; [`BytesMut`] appends to a `Vec`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Read-side cursor operations.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads `dst.len()` bytes, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 8 bytes remain.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

/// Write-side append operations.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// An owned, readable byte buffer with a consuming cursor.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Copies a slice into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

/// An append-only byte builder.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Freezes the builder into a readable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_back() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(u64::MAX - 1);
        w.put_slice(b"xy");
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 1 + 4 + 8 + 2);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(&*r, b"xy");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::copy_from_slice(&[1]);
        let _ = b.get_u32_le();
    }
}

//! # serde_json (offline stand-in)
//!
//! JSON rendering and parsing for the vendored `serde` stand-in (see
//! `vendor/serde`). [`Value`] is the shared self-describing tree —
//! `serde::Content` re-exported — so `to_value`/`from_str`/indexing
//! behave like the real crate for the shapes this workspace uses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub use serde::Content as Value;
use serde::{Deserialize, Serialize};

/// A serialization or parse failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes any `Serialize` type into a [`Value`] tree.
///
/// # Errors
///
/// Infallible for the stand-in data model; the `Result` mirrors the real
/// API so call sites stay source-compatible.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_content())
}

/// Renders a value as compact JSON.
///
/// # Errors
///
/// Infallible for the stand-in data model (see [`to_value`]).
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

/// Renders a value as pretty-printed JSON (two-space indent, like the
/// real `serde_json`).
///
/// # Errors
///
/// Infallible for the stand-in data model (see [`to_value`]).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_content(), Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into any `Deserialize` type.
///
/// # Errors
///
/// Malformed JSON, trailing garbage, or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_content(&v).map_err(Error)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let s = format!("{x}");
        out.push_str(&s);
        // `{}` prints integral floats without a fractional part; keep the
        // value a JSON float so parsers round-trip the type.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Inf; the real crate errors, we emit null.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    let pad = |out: &mut String, depth: usize| {
        if let Some(unit) = indent {
            out.push('\n');
            for _ in 0..depth {
                out.push_str(unit);
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            pad(out, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            pad(out, depth);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn expect_word(&mut self, word: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(Error(format!("expected `{word}` at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.expect_word("null").map(|()| Value::Null),
            Some(b't') => self.expect_word("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.expect_word("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogate pairs are not needed by our
                            // artifacts; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error("unpaired surrogate".into()))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        other => return Err(Error(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one multi-byte UTF-8 scalar. Validate only a
                    // 4-byte window, not the whole remaining input — the
                    // latter is O(n) per char and made large-document
                    // parsing quadratic.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let window = &self.bytes[self.pos..end];
                    let c = match std::str::from_utf8(window) {
                        Ok(s) => s.chars().next().unwrap(),
                        // The window may end mid-way through the *next*
                        // char; the valid prefix still holds the first.
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&window[..e.valid_up_to()])
                                .unwrap()
                                .chars()
                                .next()
                                .unwrap()
                        }
                        Err(_) => return Err(Error("invalid utf-8".into())),
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid utf-8 in number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("bad number `{text}`")))
        } else if let Ok(n) = text.parse::<u64>() {
            Ok(Value::U64(n))
        } else if let Ok(n) = text.parse::<i64>() {
            Ok(Value::I64(n))
        } else {
            // Integer overflow: fall back to float like the real crate's
            // arbitrary-precision-off mode.
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_nested() {
        let v: Value =
            from_str(r#"{"a": [1, -2, 3.5, true, null], "b": {"c": "x\ny"}, "d": 1e3}"#).unwrap();
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["a"][2].as_f64(), Some(3.5));
        assert_eq!(v["b"]["c"].as_str(), Some("x\ny"));
        assert_eq!(v["d"].as_f64(), Some(1000.0));
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn floats_stay_floats() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
    }
}

//! # criterion (offline stand-in)
//!
//! A minimal wall-clock benchmark runner that is source-compatible with
//! the slice of `criterion` used by `poat-bench`: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::{sample_size, throughput, bench_function, finish}`](BenchmarkGroup),
//! [`Bencher::iter`], [`Throughput`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! There is no statistical analysis, warm-up calibration, or HTML report:
//! each benchmark runs `sample_size` samples of an adaptively-chosen
//! iteration count and prints median / min / max per-iteration times (plus
//! element or byte throughput when declared). That is enough to compare
//! relative costs locally and to keep `cargo bench` compiling and running
//! hermetically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared work per iteration, used to report throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Top-level benchmark driver handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== group: {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 100,
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing sample-count and throughput settings.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration work for subsequent benchmarks in the group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Times `f` and prints one result line.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Calibrate: grow the iteration count until one sample takes
        // ~2 ms, so per-sample timing noise stays small for cheap bodies.
        loop {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            if bencher.elapsed >= Duration::from_millis(2) || bencher.iters >= 1 << 20 {
                break;
            }
            bencher.iters *= 4;
        }

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            samples.push(bencher.elapsed.as_secs_f64() / bencher.iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];

        let thru = match self.throughput {
            Some(Throughput::Elements(n)) if median > 0.0 => {
                format!("  {:>12.0} elem/s", n as f64 / median)
            }
            Some(Throughput::Bytes(n)) if median > 0.0 => {
                format!("  {:>12.0} B/s", n as f64 / median)
            }
            _ => String::new(),
        };
        eprintln!(
            "{}/{id}: median {}  (min {}, max {}, {} samples x {} iters){thru}",
            self.name,
            fmt_time(median),
            fmt_time(samples[0]),
            fmt_time(samples[samples.len() - 1]),
            samples.len(),
            bencher.iters,
        );
        self
    }

    /// Ends the group (formatting no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Bundles benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_a_benchmark() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(5);
        g.throughput(Throughput::Elements(10));
        let mut calls = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            });
        });
        g.finish();
        assert!(calls > 0);
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with("ms"));
        assert!(fmt_time(2e-6).ends_with("us"));
        assert!(fmt_time(2e-9).ends_with("ns"));
    }
}

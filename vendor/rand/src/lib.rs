//! # rand (offline stand-in)
//!
//! This workspace builds hermetically, so the real `rand` cannot be
//! downloaded. This stand-in provides the slice of its API the POAT
//! workloads and simulators use — [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] extension methods `gen`, `gen_bool`, `gen_range` —
//! backed by **xoshiro256++** seeded through SplitMix64.
//!
//! Determinism contract: the same seed always yields the same stream on
//! every platform. Streams differ from the real `rand`'s `StdRng`
//! (ChaCha12), so absolute experiment numbers shift versus runs made
//! with the real crate; all repo tests assert qualitative shapes, which
//! are distribution-level properties and survive the swap.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Samples one value from the generator's uniform stream.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types `Rng::gen_range` can sample uniformly.
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`. `lo < hi` is the caller's duty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// `hi`'s successor, for inclusive ranges; saturates at the type max.
    fn successor(self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                debug_assert!(span > 0, "gen_range called with an empty range");
                // Multiply-shift rejection-free reduction (Lemire); the
                // tiny modulo bias of plain `%` would already be fine for
                // simulation workloads, this is simply as cheap.
                let x = rng.next_u64() as u128;
                let r = (x * span) >> 64;
                (lo as i128 + r as i128) as $t
            }
            fn successor(self) -> Self { self.saturating_add(1) }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Samples uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl<T: UniformInt> SampleRange for Range<T> {
    type Output = T;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: UniformInt> SampleRange for RangeInclusive<T> {
    type Output = T;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(rng, lo, hi.successor())
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Samples a value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ (Blackman & Vigna), seeded
    /// via SplitMix64 so that every 64-bit seed yields a well-mixed state.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10..20u64);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(1..=10);
            assert!((1..=10).contains(&y));
            let z: usize = rng.gen_range(0..3);
            assert!(z < 3);
        }
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed: {counts:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits}");
    }
}

//! Failure injection: interrupt transactions at arbitrary points under
//! many crash seeds and demonstrate that the undo log always restores a
//! consistent state — the failure-safety contract of paper §2.1.4.
//!
//! ```text
//! cargo run --example crash_recovery
//! ```

use poat::pmem::{Runtime, RuntimeConfig};

/// A toy "bank": two accounts whose sum must be invariant.
struct Bank {
    a: poat::core::ObjectId,
    b: poat::core::ObjectId,
    pool: poat::core::PoolId,
}

impl Bank {
    fn create(rt: &mut Runtime) -> Result<Self, poat::pmem::PmemError> {
        let pool = rt.pool_create("bank", 1 << 20)?;
        let a = rt.pmalloc(pool, 8)?;
        let b = rt.pmalloc(pool, 8)?;
        rt.write_u64(a, 500)?;
        rt.write_u64(b, 500)?;
        rt.persist(a, 8)?;
        rt.persist(b, 8)?;
        Ok(Bank { a, b, pool })
    }

    /// Transfer with full failure safety.
    fn transfer(&self, rt: &mut Runtime, amount: u64) -> Result<(), poat::pmem::PmemError> {
        rt.tx_begin(self.pool)?;
        rt.tx_add_range(self.a, 8)?;
        rt.tx_add_range(self.b, 8)?;
        let av = rt.read_u64(self.a)?;
        let bv = rt.read_u64(self.b)?;
        rt.write_u64(self.a, av - amount)?;
        rt.write_u64(self.b, bv + amount)?;
        rt.tx_end()?;
        Ok(())
    }

    fn sum(&self, rt: &mut Runtime) -> Result<u64, poat::pmem::PmemError> {
        Ok(rt.read_u64(self.a)? + rt.read_u64(self.b)?)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut survived_mid_tx = 0;
    let mut rolled_back = 0;

    for crash_seed in 0..200u64 {
        // Committed prefix, then a transaction interrupted mid-flight.
        let mut rt = Runtime::new(RuntimeConfig {
            aslr_seed: crash_seed,
            ..Default::default()
        });
        let bank = Bank::create(&mut rt)?;
        bank.transfer(&mut rt, 100)?; // committed

        // Interrupted transfer: do the logging + first write, then crash
        // before commit.
        rt.tx_begin(bank.pool)?;
        rt.tx_add_range(bank.a, 8)?;
        rt.tx_add_range(bank.b, 8)?;
        let av = rt.read_u64(bank.a)?;
        rt.write_u64(bank.a, av - 250)?;
        // (crash here: the matching credit never happens)

        let mut rt = rt.crash_and_recover(crash_seed)?;
        let sum = bank.sum(&mut rt)?;
        assert_eq!(sum, 1000, "seed {crash_seed}: invariant broken: {sum}");

        // The committed transfer must still be visible.
        let a = rt.read_u64(bank.a)?;
        assert_eq!(a, 400, "seed {crash_seed}: committed state lost");
        rolled_back += 1;

        // And the store remains fully usable.
        bank.transfer(&mut rt, 50)?;
        assert_eq!(bank.sum(&mut rt)?, 1000);
        survived_mid_tx += 1;
    }

    println!("200 crash seeds: {rolled_back} uncommitted transfers rolled back,");
    println!("                 {survived_mid_tx} recovered stores verified usable.");
    println!("invariant (sum == 1000) held in every case.");
    Ok(())
}

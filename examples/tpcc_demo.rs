//! Run TPC-C over the persistent runtime and compare software vs hardware
//! ObjectID translation end to end: dynamic instructions, simulated
//! cycles on both core models, and the resulting speedup — a miniature of
//! the paper's TPCC experiment (Figure 9).
//!
//! ```text
//! cargo run --release --example tpcc_demo
//! ```

use poat::harness::{run_tpcc, simulate, Core, Scale};
use poat::sim::SimResult;
use poat::workloads::{ExpConfig, TpccPattern};
use poat_core::TranslationConfig;

fn main() {
    println!("populating TPC-C (1 warehouse, scaled) and running transactions…\n");

    for pattern in [TpccPattern::All, TpccPattern::Each] {
        let base = run_tpcc(pattern, ExpConfig::Base, Scale::Quick);
        let opt = run_tpcc(pattern, ExpConfig::Opt, Scale::Quick);

        let pipelined = TranslationConfig::default();
        let ino_base = simulate(&base, Core::InOrder, pipelined);
        let ino_opt = simulate(&opt, Core::InOrder, pipelined);
        let ooo_base = simulate(&base, Core::OutOfOrder, pipelined);
        let ooo_opt = simulate(&opt, Core::OutOfOrder, pipelined);

        let speed = |b: &SimResult, o: &SimResult| b.cycles as f64 / o.cycles as f64;
        println!("{pattern}:");
        println!(
            "  dynamic instructions  BASE {:>12}   OPT {:>12}   (-{:.1}%)",
            base.summary.instructions,
            opt.summary.instructions,
            (1.0 - opt.summary.instructions as f64 / base.summary.instructions as f64) * 100.0
        );
        println!(
            "  in-order cycles       BASE {:>12}   OPT {:>12}   speedup {:.2}x",
            ino_base.cycles,
            ino_opt.cycles,
            speed(&ino_base, &ino_opt)
        );
        println!(
            "  out-of-order cycles   BASE {:>12}   OPT {:>12}   speedup {:.2}x",
            ooo_base.cycles,
            ooo_opt.cycles,
            speed(&ooo_base, &ooo_opt)
        );
        println!(
            "  POLB: {} lookups, {:.2}% miss\n",
            ino_opt.translation.polb.lookups(),
            ino_opt.translation.polb.miss_rate() * 100.0
        );
    }
    println!("(paper, full scale: 1.10x/1.17x in-order, 1.12x out-of-order on TPCC_EACH)");
}

//! Crash-point sweeping: enumerate every persist boundary a workload
//! crosses, crash at each one (clean and torn), and verify recovery —
//! the campaign engine behind `repro crash-sweep`.
//!
//! ```text
//! cargo run --example crash_sweep
//! ```

use poat::harness::crash_sweep::{self, SweepOptions};
use poat::harness::Scale;
use poat::pmem::faultpoint;
use poat::pmem::{InjectMode, Runtime, RuntimeConfig};

fn build() -> Runtime {
    Runtime::new(RuntimeConfig {
        aslr_seed: 7,
        ..Default::default()
    })
}

/// A small custom workload: any `FnMut(&mut Runtime)` scenario can be
/// swept, not just the paper benchmarks.
fn scenario(rt: &mut Runtime) -> Result<(), poat::pmem::PmemError> {
    let pool = rt.pool_create("demo", 1 << 20)?;
    let root = rt.pool_root(pool, 8)?;
    let mut prev = root;
    for i in 0..8u64 {
        rt.tx_begin(pool)?;
        let node = rt.tx_pmalloc(16)?;
        rt.write_u64(node, i)?;
        rt.persist(node, 8)?;
        rt.tx_add_range(prev, 8)?;
        rt.write_u64(prev, node.raw())?;
        rt.tx_end()?;
        prev = node;
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Sweep a custom scenario with the pmem engine directly.
    let points = faultpoint::enumerate_crash_points(build, scenario)?;
    println!(
        "custom scenario crosses {} persist boundaries (last: {:?})",
        points.len(),
        points.last().unwrap().kind
    );
    let mut digests = std::collections::HashSet::new();
    for p in &points {
        for mode in [InjectMode::Clean, InjectMode::Torn] {
            let out = faultpoint::run_crash_point(build, scenario, p.index, 1, mode)?;
            assert!(out.tripped, "point {} never tripped", p.index);
            assert!(
                out.violations.is_empty(),
                "point {} [{}]: {:?}",
                p.index,
                mode.label(),
                out.violations
            );
            digests.insert(out.digest);
        }
    }
    println!(
        "swept {} points x clean+torn: 0 violations, {} distinct recovered states",
        points.len(),
        digests.len()
    );

    // 2. Same engine, paper workloads: the harness campaign `repro
    //    crash-sweep` runs. Sample a few points per workload here.
    let mut opts = SweepOptions::for_scale(Scale::Quick);
    opts.max_points = Some(12);
    let reports = crash_sweep::sweep(&opts)?;
    println!("\n{}", crash_sweep::sweep_text(&reports));
    assert_eq!(crash_sweep::total_violations(&reports), 0);

    // 3. Deterministic replay: one cell of the matrix, bit-for-bit.
    let mid = points[points.len() / 2].index;
    let a = faultpoint::run_crash_point(build, scenario, mid, 9, InjectMode::Torn)?;
    let b = faultpoint::run_crash_point(build, scenario, mid, 9, InjectMode::Torn)?;
    assert_eq!(a.digest, b.digest);
    println!(
        "replay of point {mid} seed 9 [torn] reproduced digest {:016x} bit-for-bit",
        a.digest
    );
    Ok(())
}

//! Pool inspection (the `pmempool`-style admin tool): build some state,
//! interrupt a transaction, crash, and inspect the pools at every stage —
//! including watching recovery clean the undo log.
//!
//! ```text
//! cargo run --example pool_inspect
//! ```

use poat::pmem::{PoolMode, Runtime, RuntimeConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rt = Runtime::new(RuntimeConfig::default());

    let data = rt.pool_create("data", 64 << 10)?;
    let config = rt.pool_create_with_mode("config", 16 << 10, PoolMode::ReadOnly)?;

    // Populate the data pool.
    let a = rt.pmalloc(data, 100)?;
    let b = rt.pmalloc(data, 200)?;
    let _c = rt.pmalloc(data, 300)?;
    rt.pfree(b)?;
    rt.write_u64(a, 1)?;
    rt.persist(a, 8)?;

    println!("=== after setup ===");
    for rep in rt.inspect_all()? {
        println!("{rep}\n");
    }

    // Read-only pools refuse writes.
    match rt.pmalloc(config, 8) {
        Err(e) => println!("allocation in read-only pool rejected: {e}\n"),
        Ok(_) => unreachable!("read-only pool accepted a write"),
    }

    // Leave a transaction in flight and crash.
    rt.tx_begin(data)?;
    rt.tx_add_range(a, 8)?;
    rt.write_u64(a, 999)?;
    println!("=== mid-transaction (undo log active) ===");
    println!("{}\n", rt.inspect_pool(data)?);

    let mut rt = rt.crash_and_recover(42)?;
    println!("=== after crash + recovery ===");
    println!("{}\n", rt.inspect_pool(data)?);
    println!(
        "value rolled back to {} (committed state), recoveries = {}",
        rt.read_u64(a)?,
        rt.stats().recoveries
    );
    assert_eq!(rt.read_u64(a)?, 1);
    let rep = rt.inspect_pool(data)?;
    assert!(rep.is_consistent() && !rep.log_active);
    Ok(())
}

//! Drive the two POLB designs directly with a synthetic ObjectID stream
//! and watch their behavior diverge: the Pipelined design holds one entry
//! per *pool*, the Parallel design one entry per *page* (paper §4.1) —
//! which is exactly why the Parallel POLB suffers once objects span many
//! pages.
//!
//! ```text
//! cargo run --example polb_explorer
//! ```

use poat::core::polb::{ParallelPolb, PipelinedPolb, TranslationBuffer};
use poat::core::{ObjectId, PoolId, Pot, VirtAddr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn run_stream(
    name: &str,
    oids: &[ObjectId],
    pot: &Pot,
    entries: usize,
) -> ((u64, u64), (u64, u64)) {
    let mut pipe = PipelinedPolb::new(entries);
    let mut par = ParallelPolb::new(entries);
    for &oid in oids {
        let base = pot.lookup(oid.pool().unwrap()).expect("pool mapped");
        if pipe.translate(oid).is_none() {
            pipe.fill(oid, base.raw());
        }
        if par.translate(oid).is_none() {
            // Identity "page table": frame = virtual page (illustrative).
            par.fill(oid, base.offset(oid.offset() as u64).page_base().raw());
        }
    }
    let (p, q) = (pipe.stats(), par.stats());
    println!(
        "{name:<28} Pipelined {:>6.2}% miss   Parallel {:>6.2}% miss",
        p.miss_rate() * 100.0,
        q.miss_rate() * 100.0
    );
    ((p.hits, p.misses), (q.hits, q.misses))
}

fn main() {
    let mut pot = Pot::new(1024);
    let pools: Vec<PoolId> = (1..=32).map(|i| PoolId::new(i).unwrap()).collect();
    for (i, &p) in pools.iter().enumerate() {
        pot.insert(p, VirtAddr::new(0x1000_0000_0000 + ((i as u64) << 24)))
            .unwrap();
    }
    let mut rng = StdRng::seed_from_u64(1);

    println!("32 pools, 32-entry POLBs (paper default)\n");

    // One hot object per pool: both designs capture the working set.
    let narrow: Vec<ObjectId> = (0..20_000)
        .map(|_| ObjectId::new(pools[rng.gen_range(0..32)], 64))
        .collect();
    run_stream("one object per pool", &narrow, &pot, 32);

    // 64 KB of data per pool (16 pages): one POLB entry still covers a
    // whole pool for Pipelined, but Parallel now needs 512 entries.
    let wide: Vec<ObjectId> = (0..20_000)
        .map(|_| {
            let off = rng.gen_range(0..16u32) * 4096 + 64;
            ObjectId::new(pools[rng.gen_range(0..32)], off)
        })
        .collect();
    run_stream("16 pages touched per pool", &wide, &pot, 32);

    // Sweep the POLB size for the wide stream (Figure 11's mechanism).
    println!("\nPOLB size sweep, 16-pages-per-pool stream:");
    for entries in [1, 4, 32, 128, 512] {
        let ((_, pm), (_, qm)) =
            run_stream(&format!("  {entries:>3} entries"), &wide, &pot, entries);
        let _ = (pm, qm);
    }
    println!("\nPipelined saturates once entries >= pools (32);");
    println!("Parallel needs entries >= working-set pages (512).");
}

//! Record an event-level trace of one microbenchmark and turn it into
//! both a Perfetto-loadable Chrome Trace Format JSON and a windowed
//! miss-rate timeline (see `docs/TRACING.md`).
//!
//! ```text
//! cargo run --example trace_timeline
//! ```
//!
//! The example runs the BST benchmark once in OPT mode, replays it on the
//! in-order core under both hardware POLB designs with tracing enabled,
//! and prints a per-window summary; the full trace lands in
//! `target/trace_timeline.json` (open it at <https://ui.perfetto.dev>).

use poat::harness::{run_micro, simulate, Core, Scale};
use poat::telemetry::events;
use poat::telemetry::timeline::{chrome_trace_json, windows};
use poat::workloads::{ExpConfig, Micro, Pattern};

fn main() {
    // A bounded ring: keeps the most recent 64k events, records every
    // access (sample = 1). Enabling is explicit — when off, every
    // emission site is a single relaxed atomic load.
    let recorder = events::install(1 << 16, 1);
    events::set_enabled(true);

    let opt = run_micro(Micro::Bst, Pattern::Random, ExpConfig::Opt, Scale::Quick);
    recorder.clear(); // drop trace-generation noise; keep replay only

    let pipelined = poat::core::TranslationConfig::default();
    let parallel = poat::core::TranslationConfig::for_design(poat::core::PolbDesign::Parallel);
    simulate(&opt, Core::InOrder, pipelined);
    simulate(&opt, Core::InOrder, parallel);
    events::set_enabled(false);

    let evs = recorder.events();
    println!("captured {} events from two in-order replays\n", evs.len());

    let window = 1 << 13;
    println!(
        "{:<10} {:>12} {:>9} {:>7} {:>9} {:>7}",
        "design", "window_start", "accesses", "misses", "missrate", "walks"
    );
    for w in windows(&evs, window) {
        println!(
            "{:<10} {:>12} {:>9} {:>7} {:>8.2}% {:>7}",
            w.design.name(),
            w.start_instr,
            w.accesses,
            w.polb_misses,
            w.miss_rate() * 100.0,
            w.pot_walks
        );
    }

    let path = std::path::Path::new("target").join("trace_timeline.json");
    std::fs::create_dir_all("target").expect("create target dir");
    std::fs::write(&path, chrome_trace_json(&evs)).expect("write trace");
    println!(
        "\nChrome trace written to {} — open in Perfetto",
        path.display()
    );
}

//! Quickstart: the persistent linked list of the paper's Figure 4,
//! built on the ObjectID API — create a pool, allocate nodes, link them
//! with ObjectIDs, and read the list back through a simulated restart.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use poat::core::ObjectId;
use poat::pmem::{PmemError, Runtime, RuntimeConfig};

const VALUE: u32 = 0;
const NEXT: u32 = 8;

/// insert(pool, head, value) from Figure 4: new node at the head.
fn insert(
    rt: &mut Runtime,
    pool: poat::core::PoolId,
    head: ObjectId,
    value: u64,
) -> Result<ObjectId, PmemError> {
    let node = rt.pmalloc(pool, 16)?;
    let r = rt.deref(node, None)?;
    rt.write_u64_at(&r, VALUE, value)?;
    rt.write_u64_at(&r, NEXT, head.raw())?;
    rt.persist(node, 16)?;
    Ok(node)
}

/// find(head, value) from Figure 4: first node with a matching value.
fn find(rt: &mut Runtime, head: ObjectId, value: u64) -> Result<Option<ObjectId>, PmemError> {
    let mut cur = head;
    while !cur.is_null() {
        let r = rt.deref(cur, None)?;
        let (v, _) = rt.read_u64_at(&r, VALUE)?;
        if v == value {
            return Ok(Some(cur));
        }
        let (next, _) = rt.read_u64_at(&r, NEXT)?;
        cur = ObjectId::from_raw(next);
    }
    Ok(None)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rt = Runtime::new(RuntimeConfig::default());

    // Pools are file-like: create one and take its root object as the
    // durable anchor for the list head.
    let pool = rt.pool_create("quickstart", 1 << 20)?;
    let root = rt.pool_root(pool, 8)?;

    let mut head = ObjectId::NULL;
    for value in [3, 1, 4, 1, 5, 9, 2, 6] {
        head = insert(&mut rt, pool, head, value)?;
    }
    rt.write_u64(root, head.raw())?;
    rt.persist(root, 8)?;
    println!("built an 8-node persistent list, head = {head}");

    // ObjectIDs are relocatable: crash, restart, re-open — the pool maps
    // at a different (ASLR-randomized) base, yet the same ObjectIDs work.
    let mut rt = rt.crash_and_recover(7)?;
    let head = ObjectId::from_raw(rt.read_u64(root)?);
    println!("after crash+recovery, head = {head}");

    let hit = find(&mut rt, head, 9)?;
    println!("find(9)  -> {:?}", hit.map(|o| o.to_string()));
    let miss = find(&mut rt, head, 42)?;
    println!("find(42) -> {miss:?}");
    assert!(hit.is_some() && miss.is_none());

    // The runtime recorded every dynamic instruction along the way.
    let s = rt.trace().summary();
    println!(
        "post-recovery trace: {} instructions, {} loads, {} stores",
        s.instructions,
        s.loads + s.nvloads,
        s.stores + s.nvstores
    );
    Ok(())
}

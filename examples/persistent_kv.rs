//! A small persistent key-value store over the B+Tree, with transactional
//! updates and crash recovery — the kind of application the paper's
//! runtime is meant to host.
//!
//! ```text
//! cargo run --example persistent_kv
//! ```

use poat::pmem::{Runtime, RuntimeConfig};
use poat::workloads::bplus::PersistentBPlusTree;
use poat::workloads::{Pattern, PoolSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rt = Runtime::new(RuntimeConfig::default());
    let mut rng = StdRng::seed_from_u64(2024);

    // One pool for the whole store; the pool root holds the tree root.
    let mut pools = PoolSet::create(&mut rt, Pattern::All, "kv", 8 << 20)?;
    let holder = rt.pool_root(pools.anchor(), 8)?;
    let mut kv = PersistentBPlusTree::create(&mut rt, holder)?;

    // Put 500 keys.
    for k in 0..500u64 {
        let pool = pools.pool_for(&mut rt, k)?;
        kv.insert(&mut rt, k, k * k, pool, &mut rng)?;
    }
    println!("inserted 500 keys");

    // Transactional read-modify-write.
    for k in (0..500u64).step_by(7) {
        let v = kv.get(&mut rt, k, &mut rng)?.expect("key exists");
        kv.update(&mut rt, k, v + 1, &mut rng)?;
    }
    println!("updated every 7th key");

    // Crash at an arbitrary point; committed updates must survive.
    let mut rt = rt.crash_and_recover(99)?;
    let mut checked = 0;
    for k in 0..500u64 {
        let want = if k % 7 == 0 { k * k + 1 } else { k * k };
        let got = kv.get(&mut rt, k, &mut rng)?;
        assert_eq!(got, Some(want), "key {k}");
        checked += 1;
    }
    println!("verified {checked} keys after crash+recovery");

    // Range scan through the leaf chain.
    let window = kv.scan_from(&mut rt, 250, 5, &mut rng)?;
    println!("scan_from(250, 5) -> {window:?}");
    assert_eq!(window.len(), 5);
    assert_eq!(window[0].0, 250);
    Ok(())
}

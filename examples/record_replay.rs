//! Record once, simulate many: capture a workload's instruction trace to
//! a file, then replay the saved trace against several hardware
//! configurations without re-running the workload — the workflow
//! trace-driven simulators are built around.
//!
//! ```text
//! cargo run --release --example record_replay
//! ```

use poat::core::TranslationConfig;
use poat::pmem::{trace_io, Runtime};
use poat::sim::{simulate_inorder, SimConfig};
use poat::workloads::{ExpConfig, Micro, Pattern};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Record: run the B+Tree microbenchmark once, OPT configuration.
    let seed = 7;
    let mut rt = Runtime::new(ExpConfig::Opt.runtime_config(seed));
    Micro::Bpt.run_ops(&mut rt, Pattern::Random, seed, 300)?;
    let trace = rt.take_trace();
    let state = rt.machine_state();

    let dir = std::env::temp_dir().join("poat-record-replay");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("bpt-random-opt.poattrc");
    trace_io::save(&trace, &path)?;
    let on_disk = std::fs::metadata(&path)?.len();
    println!(
        "recorded {} trace ops ({} dynamic instructions) -> {} ({on_disk} bytes)",
        trace.len(),
        trace.summary().instructions,
        path.display()
    );

    // 2. Replay the *file* against a sweep of POLB sizes.
    let replayed = trace_io::load(&path)?;
    assert!(replayed.ops().eq(trace.ops()), "replayed trace differs");
    println!("\nPOLB size sweep over the saved trace (in-order):");
    for entries in [0usize, 1, 4, 32, 128] {
        let cfg = SimConfig::with_translation(TranslationConfig {
            polb_entries: entries,
            ..TranslationConfig::default()
        });
        let r = simulate_inorder(&replayed, &state, &cfg)?;
        println!(
            "  {:>3} entries: {:>9} cycles, POLB miss {:>6.2}%",
            entries,
            r.cycles,
            r.translation.polb.miss_rate() * 100.0
        );
    }

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
